"""Checkpoint/restore: versioned, integrity-checked snapshots of a full
simulation.

A checkpoint captures everything a mid-measurement run needs to continue
bit-identically in a *different process on a different day*:

* the entire :class:`~repro.system.cmp.CMPSystem` object graph — caches,
  MSHRs, arbiter virtual-time registers, in-flight requests, the
  skip-ahead kernel's adaptive state — via one ``pickle`` (shared
  references, e.g. the telemetry bus and its attached metrics collector,
  are preserved by the pickle memo);
* every workload cursor: traces are wrapped in :class:`ResumableTrace`,
  which records its declarative spec plus the number of items consumed
  and replays the seeded generator forward on unpickle (generators
  themselves cannot be pickled, but the streams are deterministic);
* the two module-global id counters (``ArbiterEntry.order`` is a
  behavioral tie-break key in the VPC arbiter; ``MemoryRequest.req_id``
  is telemetry-only) so entries created after a restore still sort
  after entries that were in flight at snapshot time;
* the measurement bookkeeping of :func:`~repro.system.simulator
  .run_simulation` (interval snapshots, cycles remaining).

File format (see docs/ARCHITECTURE.md "Resilience")::

    REPRO-CKPT\\n
    {json header: schema, cycle, point_key, payload_bytes, sha256}\\n
    <zlib-compressed pickle payload>

The header checksum makes corruption (truncated writes, the chaos
harness's bit flips) a detected :class:`CheckpointError`, never a
silently wrong resume; writes are atomic (tmp + rename).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import zlib
from pathlib import Path
from typing import Optional

from repro.workloads import build_trace

#: Bump whenever the payload layout or any pickled class changes shape
#: incompatibly; stale checkpoints then fail header validation instead
#: of unpickling garbage.
CHECKPOINT_SCHEMA_VERSION = 1

_MAGIC = b"REPRO-CKPT\n"


class CheckpointError(Exception):
    """A checkpoint file is missing, corrupt, or from another run."""


class ResumableTrace:
    """Picklable trace iterator: a declarative spec plus a cursor.

    Wraps the seeded generator :func:`repro.workloads.build_trace`
    produces and counts consumed items.  Pickling stores only
    ``(spec, thread_id, count)``; unpickling rebuilds the generator and
    replays ``count`` items — deterministic streams make the replayed
    cursor exactly the suspended one.
    """

    __slots__ = ("spec", "thread_id", "count", "_next")

    def __init__(self, spec, thread_id: int, _skip: int = 0):
        self.spec = spec
        self.thread_id = thread_id
        self.count = _skip
        iterator = build_trace(spec, thread_id)
        step = iterator.__next__
        for _ in range(_skip):
            step()
        self._next = step

    def __iter__(self) -> "ResumableTrace":
        return self

    def __next__(self):
        item = self._next()
        self.count += 1
        return item

    def __reduce__(self):
        return (ResumableTrace, (self.spec, self.thread_id, self.count))


# --------------------------------------------------------------------- #
# Module-global id counters.
# --------------------------------------------------------------------- #

def _count_value(counter) -> int:
    """Current value of an ``itertools.count`` (its repr is value-complete)."""
    return int(repr(counter)[len("count("):-1])


def _counter_state() -> dict:
    from repro.common import records
    from repro.core import arbiter
    return {
        "entry_order": _count_value(arbiter._entry_order),
        "request_ids": _count_value(records._request_ids),
    }


def _install_counters(state: dict) -> None:
    """Advance the global id counters to at least the checkpointed
    values.  ``max`` with the live value: never move a counter backwards
    in a process that has since created entries of its own (absolute
    values are meaningless — only monotonicity matters for the VPC
    tie-break)."""
    from repro.common import records
    from repro.core import arbiter
    arbiter._entry_order = itertools.count(
        max(_count_value(arbiter._entry_order), state["entry_order"]))
    records._request_ids = itertools.count(
        max(_count_value(records._request_ids), state["request_ids"]))


# --------------------------------------------------------------------- #
# File format.
# --------------------------------------------------------------------- #

def write_checkpoint(path, system, state, point_key: str = "") -> None:
    """Atomically write one checkpoint file for a mid-measurement run.

    ``state`` is the simulator's :class:`~repro.system.simulator
    .MeasureState`; the attached metrics collector/attributor (if any)
    ride along inside the pickled system's telemetry bus.
    """
    payload = pickle.dumps({
        "system": system,
        "state": state,
        "counters": _counter_state(),
    }, protocol=pickle.HIGHEST_PROTOCOL)
    compressed = zlib.compress(payload, level=1)
    header = {
        "schema": CHECKPOINT_SCHEMA_VERSION,
        "cycle": system.cycle,
        "point_key": point_key,
        "payload_bytes": len(compressed),
        "sha256": hashlib.sha256(compressed).hexdigest(),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    with open(tmp, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(json.dumps(header, sort_keys=True).encode() + b"\n")
        fh.write(compressed)
        fh.flush()
        os.fsync(fh.fileno())
    tmp.replace(path)


def read_checkpoint_header(path) -> dict:
    """Parse and validate only the header (cheap existence/metadata probe)."""
    try:
        with open(path, "rb") as fh:
            magic = fh.read(len(_MAGIC))
            if magic != _MAGIC:
                raise CheckpointError(f"{path}: bad magic")
            header = json.loads(fh.readline().decode())
    except OSError as exc:
        raise CheckpointError(f"{path}: {exc}") from exc
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"{path}: corrupt header: {exc}") from exc
    if header.get("schema") != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"{path}: schema {header.get('schema')} != "
            f"{CHECKPOINT_SCHEMA_VERSION}")
    return header


def load_checkpoint(path, expect_key: Optional[str] = None) -> dict:
    """Load, verify, and unpickle a checkpoint payload.

    Returns the payload dict (``system``, ``state``, ``counters``) with
    the global id counters already reinstalled.  Raises
    :class:`CheckpointError` on any integrity failure — callers fall
    back to a from-scratch run.
    """
    header = read_checkpoint_header(path)
    if expect_key is not None and header["point_key"] != expect_key:
        raise CheckpointError(
            f"{path}: checkpoint is for point {header['point_key']!r}, "
            f"not {expect_key!r}")
    try:
        with open(path, "rb") as fh:
            fh.read(len(_MAGIC))
            fh.readline()
            compressed = fh.read()
    except OSError as exc:
        raise CheckpointError(f"{path}: {exc}") from exc
    if len(compressed) != header["payload_bytes"]:
        raise CheckpointError(
            f"{path}: truncated payload "
            f"({len(compressed)}/{header['payload_bytes']} bytes)")
    if hashlib.sha256(compressed).hexdigest() != header["sha256"]:
        raise CheckpointError(f"{path}: payload checksum mismatch")
    try:
        payload = pickle.loads(zlib.decompress(compressed))
    except (zlib.error, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, ValueError) as exc:
        raise CheckpointError(f"{path}: unpicklable payload: {exc}") from exc
    _install_counters(payload["counters"])
    return payload


class Checkpointer:
    """Cadence + destination for checkpoints during a measurement.

    Passed to :func:`repro.system.simulator.run_simulation` (or carried
    across a resume); the simulator calls :meth:`maybe` at every chunk
    boundary.  ``every`` is in simulated cycles; with a metrics
    collector attached, saves land on the first window boundary at or
    past the cadence so window sampling stays aligned with an
    uninterrupted run.  ``chaos`` is an optional
    :class:`repro.resilience.chaos.ChaosInjector` given a chance to
    misbehave at each boundary (kill the process, corrupt the file just
    written) — the test/CI hook that proves recovery works.
    """

    def __init__(self, path, every: int, point_key: str = "",
                 chaos=None) -> None:
        if every < 1:
            raise ValueError(f"checkpoint cadence must be >= 1, got {every}")
        self.path = Path(path)
        self.every = every
        self.point_key = point_key
        self.chaos = chaos
        self.saved = 0
        # Optional hook fired (with the checkpointed cycle) after each
        # save lands — the fleet worker journals through it.
        self.on_saved = None

    def maybe(self, system, state) -> bool:
        """Save if the cadence has elapsed; called at chunk boundaries."""
        if self.chaos is not None:
            self.chaos.at_boundary(system.cycle)
        if state.since_checkpoint < self.every or state.remaining <= 0:
            return False
        state.since_checkpoint = 0
        write_checkpoint(self.path, system, state, point_key=self.point_key)
        self.saved += 1
        if self.on_saved is not None:
            self.on_saved(system.cycle)
        if self.chaos is not None:
            self.chaos.maybe_corrupt(self.path)
        return True


class ResumedRun:
    """A loaded checkpoint, ready to continue.

    Exposes the revived ``system``/``state`` plus any metrics collector
    and interference attributor found on the revived telemetry bus, so
    callers can rewire observation hooks (live feeds) before calling
    :meth:`run`.
    """

    def __init__(self, payload: dict) -> None:
        self.system = payload["system"]
        self.state = payload["state"]
        self.metrics = None
        self.attributor = None
        bus = self.system.telemetry
        if bus is not None:
            from repro.telemetry import InterferenceAttributor, MetricsCollector
            for sink in getattr(bus, "sinks", []):
                if isinstance(sink, MetricsCollector):
                    self.metrics = sink
                elif isinstance(sink, InterferenceAttributor):
                    self.attributor = sink

    @property
    def cycle(self) -> int:
        return self.system.cycle

    def run(self, checkpointer: Optional[Checkpointer] = None,
            on_window=None):
        """Continue to the end of the measurement; returns the same
        :class:`~repro.system.simulator.SimulationResult` an
        uninterrupted run would have produced (bit-identical)."""
        from repro.system.simulator import continue_measurement
        return continue_measurement(
            self.system, self.state, metrics=self.metrics,
            on_window=on_window, checkpoint=checkpointer,
        )


def open_checkpoint(path, expect_key: Optional[str] = None) -> ResumedRun:
    """Load a checkpoint into a :class:`ResumedRun`."""
    return ResumedRun(load_checkpoint(path, expect_key=expect_key))


def resume_simulation(path, checkpointer: Optional[Checkpointer] = None,
                      on_window=None):
    """One-call resume: load ``path`` and run the measurement tail.

    The returned :class:`~repro.system.simulator.SimulationResult` is
    bit-identical to what the original, uninterrupted ``run_simulation``
    call would have returned (guarded by tests/test_resilience.py).
    """
    return open_checkpoint(path).run(checkpointer=checkpointer,
                                     on_window=on_window)

"""Resilience subsystem: checkpoint/restore, crash-safe experiment
journal, and fault-injecting chaos harness.

Three pillars (docs/ARCHITECTURE.md "Resilience"):

* :mod:`repro.resilience.snapshot` — versioned, integrity-checked
  checkpoints of a full mid-measurement simulation; resuming one is
  bit-identical to never having stopped.
* :mod:`repro.resilience.journal` — an append-only JSONL journal per
  experiment run that makes ``--resume`` skip completed points and
  restart half-done ones from their last checkpoint.
* :mod:`repro.resilience.chaos` — seeded fault injection (worker kills,
  hangs, delays, checkpoint corruption) used by the tests and the CI
  chaos-smoke job to prove the other two pillars actually work.
"""

from repro.resilience.chaos import ChaosConfig, ChaosInjector
from repro.resilience.fleet import (
    FleetAborted,
    PointsExcludedError,
    ResilienceConfig,
    run_points_resilient,
)
from repro.resilience.journal import (
    JournalError,
    JournalState,
    RunJournal,
    replay,
)
from repro.resilience.snapshot import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    Checkpointer,
    ResumableTrace,
    ResumedRun,
    load_checkpoint,
    open_checkpoint,
    read_checkpoint_header,
    resume_simulation,
    write_checkpoint,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "ChaosConfig",
    "ChaosInjector",
    "CheckpointError",
    "FleetAborted",
    "JournalError",
    "JournalState",
    "PointsExcludedError",
    "ResilienceConfig",
    "RunJournal",
    "replay",
    "run_points_resilient",
    "Checkpointer",
    "ResumableTrace",
    "ResumedRun",
    "load_checkpoint",
    "open_checkpoint",
    "read_checkpoint_header",
    "resume_simulation",
    "write_checkpoint",
]

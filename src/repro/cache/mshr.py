"""Miss-status holding registers with secondary-miss coalescing.

Used by the core model to bound outstanding L2 loads (Table 1: 16 D-cache
MSHRs).  A load to a line that already has an MSHR allocated coalesces
into it (a *secondary* miss) and completes when the primary does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry.events import CAT_MSHR, PH_COUNTER, TraceEvent


@dataclass
class MSHREntry:
    line: int
    primary_seq: int
    waiters: List[int] = field(default_factory=list)  # coalesced load seqs
    is_prefetch: bool = False      # primary was a hardware prefetch
    demand_joined: bool = False    # a demand load coalesced onto it


class MSHRFile:
    """Fixed-capacity MSHR file keyed by line address."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("MSHR file needs at least one entry")
        self.capacity = capacity
        self._entries: Dict[int, MSHREntry] = {}
        self.primary_misses = 0
        self.secondary_misses = 0
        # Telemetry (repro.telemetry): None = disabled = free.
        self._trace = None
        self.trace_name = "mshrs"
        # Cycle accounting: the owning thread's census gains/loses an
        # in-flight line at primary allocate/complete.
        self._acct = None
        self.acct_tid = -1

    def _emit_occupancy(self, now: int, what: str, line: int) -> None:
        # Counter events carry numeric series only (Perfetto renders each
        # args key as one counter series; strings would corrupt the
        # track).  ``what``/``line`` detail belongs to request spans.
        self._trace.emit(TraceEvent(
            ts=now, phase=PH_COUNTER, category=CAT_MSHR,
            name=self.trace_name, track=self.trace_name,
            args={"outstanding": len(self._entries)},
        ))

    def lookup(self, line: int) -> Optional[MSHREntry]:
        return self._entries.get(line)

    def can_allocate(self, line: int) -> bool:
        """True when a miss to ``line`` can proceed (coalesce or allocate)."""
        return line in self._entries or len(self._entries) < self.capacity

    def allocate(
        self, line: int, seq: int, is_prefetch: bool = False, now: int = -1
    ) -> bool:
        """Register a miss.  Returns True for a primary miss (issue to L2),
        False for a secondary miss (coalesced, nothing to issue).

        A demand load coalescing onto an in-flight prefetch marks the
        prefetch *useful* (the coverage metric of the prefetch study).
        """
        entry = self._entries.get(line)
        if entry is not None:
            entry.waiters.append(seq)
            self.secondary_misses += 1
            if entry.is_prefetch and not is_prefetch:
                entry.demand_joined = True
            return False
        if len(self._entries) >= self.capacity:
            raise RuntimeError("MSHR allocate with no free entry; call can_allocate")
        self._entries[line] = MSHREntry(
            line=line, primary_seq=seq, is_prefetch=is_prefetch
        )
        self.primary_misses += 1
        if self._trace is not None and now >= 0:
            self._emit_occupancy(now, "allocate", line)
        if self._acct is not None and now >= 0:
            self._acct.mshr_allocated(self.acct_tid, now)
        return True

    def complete(self, line: int, now: int = -1) -> "MSHREntry":
        """Retire the MSHR for ``line``; returns the retired entry (its
        ``primary_seq`` + ``waiters`` are every waiting load seq)."""
        entry = self._entries.pop(line, None)
        if entry is None:
            raise KeyError(f"no MSHR outstanding for line {line:#x}")
        if self._trace is not None and now >= 0:
            self._emit_occupancy(now, "retire", line)
        if self._acct is not None and now >= 0:
            self._acct.mshr_completed(self.acct_tid, now)
        return entry

    @property
    def outstanding(self) -> int:
        return len(self._entries)

    def __contains__(self, line: int) -> bool:
        return line in self._entries

"""The banked shared L2 cache as a single component.

Wraps the per-bank pipelines (:class:`repro.cache.bank.CacheBank`) with
line-address interleaving (bank = line mod N, Section 3.1's
address-interleaved banking) and aggregate reporting.  The CMP assembly
talks to this object; tests can also drive it directly without cores.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.cache.bank import CacheBank
from repro.cache.cache_array import CacheArray
from repro.cache.replacement import ReplacementPolicy
from repro.common.config import L2Config
from repro.common.records import MemoryRequest
from repro.core.arbiter import Arbiter


class SharedL2:
    """A multi-bank shared L2 cache."""

    def __init__(
        self,
        config: L2Config,
        n_threads: int,
        arbiter_factory: Callable[[str, int], Arbiter],
        policy_factory: Callable[[], ReplacementPolicy],
        respond: Callable[[MemoryRequest, int], None],
        memory,
    ) -> None:
        self.config = config
        self.banks: List[CacheBank] = []
        for bank_id in range(config.banks):
            array = CacheArray(
                sets=config.sets,
                ways=config.ways,
                policy=policy_factory(),
                index_stride=config.banks,
            )
            self.banks.append(
                CacheBank(
                    bank_id=bank_id,
                    n_threads=n_threads,
                    config=config,
                    array=array,
                    arbiter_factory=arbiter_factory,
                    respond=respond,
                    memory=memory,
                )
            )

    def bank_of(self, line: int) -> int:
        """Address-interleaved bank selection (line mod banks)."""
        return line % self.config.banks

    def accept(self, request: MemoryRequest, now: int) -> None:
        self.banks[self.bank_of(request.line)].accept(request, now)

    def tick(self, now: int) -> None:
        for bank in self.banks:
            bank.tick(now)

    def busy(self) -> bool:
        return any(bank.busy() for bank in self.banks)

    def next_event(self, now: int) -> int:
        return min(bank.next_event(now) for bank in self.banks)

    # ------------------------------------------------------------------ #
    # Aggregate reporting.
    # ------------------------------------------------------------------ #

    def utilizations(self, cycles: int, snapshots=None) -> Dict[str, float]:
        """Per-resource utilization averaged over banks."""
        snapshots = snapshots or [None] * len(self.banks)
        totals = {"tag": 0.0, "data": 0.0, "bus": 0.0}
        for bank, snap in zip(self.banks, snapshots):
            for name, value in bank.utilizations(cycles, snapshots=snap).items():
                totals[name] += value
        return {name: value / len(self.banks) for name, value in totals.items()}

    def utilization_snapshot(self) -> List[Dict[str, int]]:
        return [bank.utilization_snapshot() for bank in self.banks]

    def counter_total(self, name: str) -> int:
        return sum(bank.counters.get(name) for bank in self.banks)

    def occupancy_by_thread(self, n_threads: int) -> List[int]:
        totals = [0] * n_threads
        for bank in self.banks:
            for tid, count in enumerate(bank.array.occupancy_by_thread(n_threads)):
                totals[tid] += count
        return totals

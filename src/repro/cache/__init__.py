"""Cache substrate: arrays, L1, store gathering, and the L2 bank pipeline."""

from repro.cache.bank import CacheBank, SMState, StateMachine
from repro.cache.cache_array import CacheArray, CacheSet, Eviction
from repro.cache.l1 import L1Cache
from repro.cache.l2 import SharedL2
from repro.cache.l3 import L3Config, SharedL3
from repro.cache.mshr import MSHREntry, MSHRFile
from repro.cache.replacement import LRUPolicy, ReplacementPolicy, SetView
from repro.cache.store_gather import StoreGatherBuffer

__all__ = [
    "CacheArray",
    "CacheBank",
    "CacheSet",
    "Eviction",
    "L1Cache",
    "L3Config",
    "LRUPolicy",
    "MSHREntry",
    "MSHRFile",
    "ReplacementPolicy",
    "SharedL2",
    "SharedL3",
    "SMState",
    "SetView",
    "StateMachine",
    "StoreGatherBuffer",
]

"""Set-associative tag-state array with pluggable replacement.

This models the *state* of a cache (tags, owners, LRU stacks, dirty
bits); timing lives in :mod:`repro.cache.bank`.  Every line remembers the
thread that owns it — the paper's thread-aware replacement policies
(Section 4.2) key on ownership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.replacement import ReplacementPolicy, SetView


@dataclass(frozen=True, slots=True)
class Eviction:
    """Result of an insert: where the line went and what it displaced."""

    way: int
    victim_line: Optional[int]
    victim_owner: int
    victim_dirty: bool


class CacheSet:
    """One cache set: tags, per-way metadata, and an MRU-first stack."""

    __slots__ = ("ways", "index", "line_of", "owner", "valid", "dirty",
                 "lru", "_where")

    def __init__(self, ways: int, index: int = -1) -> None:
        self.ways = ways
        self.index = index
        self.line_of: List[int] = [-1] * ways
        self.owner: List[int] = [-1] * ways
        self.valid: List[bool] = [False] * ways
        self.dirty: List[bool] = [False] * ways
        self.lru: List[int] = list(range(ways))  # MRU first
        self._where: Dict[int, int] = {}          # line -> way

    def find(self, line: int) -> Optional[int]:
        return self._where.get(line)

    def touch(self, way: int) -> None:
        """Move ``way`` to the MRU position."""
        lru = self.lru
        if lru[0] != way:
            lru.remove(way)
            lru.insert(0, way)

    def free_way(self) -> Optional[int]:
        for way in range(self.ways):
            if not self.valid[way]:
                return way
        return None

    def occupancy(self, thread_id: int) -> int:
        return sum(
            1
            for way in range(self.ways)
            if self.valid[way] and self.owner[way] == thread_id
        )

    def view(self) -> SetView:
        return SetView(
            ways=self.ways,
            owners=list(self.owner),
            valid=list(self.valid),
            lru_order=[w for w in reversed(self.lru)],  # LRU first for policies
            index=self.index,
        )

    def install(self, way: int, line: int, thread_id: int) -> None:
        if self.valid[way]:
            del self._where[self.line_of[way]]
        self.line_of[way] = line
        self.owner[way] = thread_id
        self.valid[way] = True
        self.dirty[way] = False
        self._where[line] = way
        self.touch(way)

    def invalidate(self, way: int) -> None:
        if self.valid[way]:
            del self._where[self.line_of[way]]
        self.valid[way] = False
        self.dirty[way] = False
        self.line_of[way] = -1
        self.owner[way] = -1


class CacheArray:
    """A full set-associative array addressed by line number.

    ``index_stride`` lets a banked cache map its slice of the address
    space: bank *b* of *N* sees lines where ``line % N == b``, so the set
    index is ``(line // N) % sets``.
    """

    def __init__(
        self,
        sets: int,
        ways: int,
        policy: ReplacementPolicy,
        index_stride: int = 1,
    ) -> None:
        if sets <= 0 or (sets & (sets - 1)):
            raise ValueError(f"set count must be a positive power of two: {sets}")
        if ways <= 0:
            raise ValueError(f"way count must be positive: {ways}")
        self.sets = sets
        self.ways = ways
        self.policy = policy
        self.index_stride = index_stride
        self._sets: List[CacheSet] = [
            CacheSet(ways, index) for index in range(sets)
        ]
        self.hits = 0
        self.misses = 0

    def set_index(self, line: int) -> int:
        return (line // self.index_stride) % self.sets

    def _set(self, line: int) -> CacheSet:
        return self._sets[self.set_index(line)]

    def lookup(self, line: int, update_lru: bool = True) -> bool:
        """Tag probe.  Updates hit/miss counters and (on hit) recency."""
        cset = self._set(line)
        way = cset.find(line)
        if way is None:
            self.misses += 1
            return False
        self.hits += 1
        if update_lru:
            cset.touch(way)
        return True

    def contains(self, line: int) -> bool:
        """Pure probe with no side effects (for assertions/tests)."""
        return self._set(line).find(line) is not None

    def insert(self, line: int, thread_id: int) -> Eviction:
        """Install ``line`` for ``thread_id``, evicting if necessary."""
        cset = self._set(line)
        existing = cset.find(line)
        if existing is not None:
            # Refetch of a present line (e.g. racing fills); just refresh.
            cset.owner[existing] = thread_id
            cset.touch(existing)
            return Eviction(existing, None, -1, False)
        way = cset.free_way()
        if way is not None:
            cset.install(way, line, thread_id)
            return Eviction(way, None, -1, False)
        victim = self.policy.choose_victim(cset.view(), thread_id)
        if not cset.valid[victim]:
            raise RuntimeError("policy chose an invalid way with none free")
        evicted = Eviction(
            way=victim,
            victim_line=cset.line_of[victim],
            victim_owner=cset.owner[victim],
            victim_dirty=cset.dirty[victim],
        )
        cset.install(victim, line, thread_id)
        return evicted

    def set_dirty(self, line: int, dirty: bool = True) -> None:
        cset = self._set(line)
        way = cset.find(line)
        if way is None:
            raise KeyError(f"line {line:#x} not present")
        cset.dirty[way] = dirty

    def is_dirty(self, line: int) -> bool:
        cset = self._set(line)
        way = cset.find(line)
        return way is not None and cset.dirty[way]

    def invalidate(self, line: int) -> None:
        cset = self._set(line)
        way = cset.find(line)
        if way is not None:
            cset.invalidate(way)

    def occupancy_by_thread(self, n_threads: int) -> List[int]:
        counts = [0] * n_threads
        for cset in self._sets:
            for way in range(cset.ways):
                if cset.valid[way] and 0 <= cset.owner[way] < n_threads:
                    counts[cset.owner[way]] += 1
        return counts

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

"""Optional shared L3 cache, "shared in a similar manner" (Section 1.1).

The paper notes the VPC structure applies unchanged to an L3: shared
bandwidth (here one arbitrated access port) and shared capacity (the
same quota replacement policy).  :class:`SharedL3` implements the exact
memory-side interface the L2 banks use (``can_accept_read`` /
``enqueue_read`` / ``enqueue_write`` / ``tick`` / ``busy``), so it
drops between the L2 and the memory controller without touching either.

Timing model: a unified tag+data access occupies the port for
``port_occupancy`` cycles and returns data after ``latency`` cycles; a
miss forwards to the backing memory and fills on return (dirty victims
write back).  The port is arbitrated by any
:class:`~repro.core.arbiter.Arbiter` — FCFS for a conventional L3, a
:class:`~repro.core.vpc_arbiter.VPCArbiter` for a virtual private L3.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Tuple

from repro.cache.cache_array import CacheArray
from repro.cache.replacement import ReplacementPolicy
from repro.common.latch import NEVER, VariableDelayQueue
from repro.common.stats import Counters, UtilizationMeter
from repro.core.arbiter import Arbiter, ArbiterEntry

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class L3Config:
    """Geometry and timing of the optional shared L3."""

    size_bytes: int = 64 * MIB
    ways: int = 32
    line_size: int = 64
    latency: int = 20            # access latency (tag + data, unified)
    port_occupancy: int = 10     # new access every `port_occupancy` cycles
    pending_per_thread: int = 16

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_size)


@dataclass
class _L3Access:
    thread_id: int
    line: int
    notify: Optional[Callable[[int], None]]
    is_write: bool


_PORT_DONE = 0
_MEM_DATA = 1


class _MemDataCallback:
    """Memory-completion callback for one in-flight L3 miss; a
    module-level class (not a closure) so in-flight misses survive a
    checkpoint pickle (repro.resilience.snapshot)."""

    __slots__ = ("l3", "access")

    def __init__(self, l3: "SharedL3", access: "_L3Access") -> None:
        self.l3 = l3
        self.access = access

    def __call__(self, cycle: int) -> None:
        self.l3._events.push_at(cycle, (_MEM_DATA, self.access))


class SharedL3:
    """A shared L3 implementing the L2 banks' memory-side interface."""

    def __init__(
        self,
        config: L3Config,
        n_threads: int,
        arbiter: Arbiter,
        policy: ReplacementPolicy,
        memory,
    ) -> None:
        self.config = config
        self.n_threads = n_threads
        self.arbiter = arbiter
        self.memory = memory
        self.array = CacheArray(config.sets, config.ways, policy)
        self.port = UtilizationMeter("l3-port")
        self.counters = Counters()
        self._events: VariableDelayQueue = VariableDelayQueue()
        self._pending_count = [0] * n_threads
        self._mem_wait: Deque[_L3Access] = deque()
        self._wb_wait: Deque[Tuple[int, int]] = deque()  # (thread, victim line)

    # ------------------------------------------------------------------ #
    # Memory-side interface (what the L2 banks call).
    # ------------------------------------------------------------------ #

    def can_accept_read(self, thread_id: int) -> bool:
        return self._pending_count[thread_id] < self.config.pending_per_thread

    def can_accept_write(self, thread_id: int) -> bool:
        return self._pending_count[thread_id] < self.config.pending_per_thread

    def enqueue_read(
        self, thread_id: int, line: int,
        notify: Callable[[int], None], now: int, tracked: bool = False,
    ) -> None:
        # ``tracked`` (cycle accounting) is accepted for interface parity
        # with the memory controller and ignored: with an L3 configured,
        # all below-L2 time is accounted as dram_queue.
        self._admit(_L3Access(thread_id, line, notify, False), now)

    def enqueue_write(self, thread_id: int, line: int, now: int) -> None:
        self._admit(_L3Access(thread_id, line, None, True), now)

    def _admit(self, access: _L3Access, now: int) -> None:
        if self._pending_count[access.thread_id] >= self.config.pending_per_thread:
            raise RuntimeError("L3 admission without a capacity check")
        self._pending_count[access.thread_id] += 1
        self.arbiter.enqueue(
            ArbiterEntry(
                thread_id=access.thread_id,
                payload=access,
                is_write=access.is_write,
            ),
            now,
        )

    # ------------------------------------------------------------------ #
    # Per-cycle advance.
    # ------------------------------------------------------------------ #

    def tick(self, now: int) -> None:
        for kind, payload in self._events.pop_ready(now):
            if kind == _PORT_DONE:
                self._port_done(payload, now)
            else:
                self._memory_data(payload, now)
        self._drain_writebacks(now)
        if self.port.is_free(now) and len(self.arbiter):
            entry = self.arbiter.select(now)
            if entry is not None:
                self.port.mark_busy(now, self.config.port_occupancy)
                self._events.push_at(
                    now + self.config.latency, (_PORT_DONE, entry.payload)
                )

    def _port_done(self, access: _L3Access, now: int) -> None:
        hit = self.array.lookup(access.line)
        if access.is_write:
            # Writeback from the L2: install (write-allocate) and dirty.
            self.counters.add("write_hits" if hit else "write_misses")
            if not hit:
                self._install(access.line, access.thread_id)
            self.array.set_dirty(access.line)
            self._finish(access, now)
            return
        if hit:
            self.counters.add("read_hits")
            access.notify(now)
            self._finish(access, now)
            return
        self.counters.add("read_misses")
        if self.memory.can_accept_read(access.thread_id):
            self._forward_to_memory(access, now)
        else:
            self._mem_wait.append(access)

    def _forward_to_memory(self, access: _L3Access, now: int) -> None:
        self.memory.enqueue_read(access.thread_id, access.line,
                                 _MemDataCallback(self, access), now)

    def _memory_data(self, access: _L3Access, now: int) -> None:
        self._install(access.line, access.thread_id)
        self.counters.add("fills")
        access.notify(now)
        self._finish(access, now)

    def _install(self, line: int, thread_id: int) -> None:
        eviction = self.array.insert(line, thread_id)
        if eviction.victim_dirty:
            self.counters.add("writebacks")
            self._wb_wait.append((thread_id, eviction.victim_line))

    def _drain_writebacks(self, now: int) -> None:
        while self._mem_wait and self.memory.can_accept_read(
            self._mem_wait[0].thread_id
        ):
            self._forward_to_memory(self._mem_wait.popleft(), now)
        while self._wb_wait:
            thread_id, line = self._wb_wait[0]
            if not self.memory.can_accept_write(thread_id):
                break
            self._wb_wait.popleft()
            self.memory.enqueue_write(thread_id, line, now)

    def _finish(self, access: _L3Access, now: int) -> None:
        self._pending_count[access.thread_id] -= 1

    def busy(self) -> bool:
        return bool(
            len(self._events) or len(self.arbiter) or self._mem_wait
            or self._wb_wait or any(self._pending_count)
        )

    def next_event(self, now: int) -> int:
        """Earliest cycle >= ``now`` at which ``tick`` could change state.

        Exact for the skipped cycles: the port arbiter's ``select`` is
        only invoked while the port meter is free, so jumping to
        ``busy_until`` drops no arbitration decisions.
        """
        if self._mem_wait or self._wb_wait:
            return now  # retried against the memory interface every cycle
        nxt = NEVER
        head = self._events.next_ready_cycle()
        if head >= 0:
            nxt = max(now, head)
        if len(self.arbiter):
            nxt = min(nxt, max(now, self.port.busy_until))
        return nxt

    def utilization(self, cycles: int, since_busy: int = 0) -> float:
        return self.port.utilization(cycles, since_busy)


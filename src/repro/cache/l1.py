"""Private write-through L1 data cache (paper Section 3.1, Table 1).

Write-through, no-write-allocate: every store is forwarded to the L2
(where the store gathering buffers absorb it); a store that hits updates
the L1 copy in place.  Loads allocate on miss.  This is the IBM-970-style
design the paper assumes — it keeps the L1 simple and pushes all store
bandwidth pressure onto the shared L2, which is exactly the pressure the
VPC arbiters must manage.
"""

from __future__ import annotations

from repro.cache.cache_array import CacheArray
from repro.cache.replacement import LRUPolicy
from repro.common.config import L1Config


class L1Cache:
    """State-only L1 model; its 2-cycle latency is applied by the core."""

    def __init__(self, config: L1Config) -> None:
        self.config = config
        self.array = CacheArray(config.sets, config.ways, LRUPolicy())
        self.load_hits = 0
        self.load_misses = 0
        self.store_hits = 0
        self.store_misses = 0

    def line_of(self, addr: int) -> int:
        return addr // self.config.line_size

    def load(self, addr: int) -> bool:
        """Probe for a load.  Returns True on hit.  Misses do NOT allocate
        here — the core allocates via :meth:`fill` when the L2 responds,
        so in-flight misses don't appear cached."""
        hit = self.array.lookup(self.line_of(addr))
        if hit:
            self.load_hits += 1
        else:
            self.load_misses += 1
        return hit

    def store(self, addr: int) -> bool:
        """Write-through store.  Returns True when the line was present
        (L1 updated); the caller forwards the store to L2 either way."""
        line = self.line_of(addr)
        hit = self.array.lookup(line)
        if hit:
            self.store_hits += 1
        else:
            self.store_misses += 1
        return hit

    def fill(self, addr: int, thread_id: int = 0) -> None:
        """Install the line for a returning load miss.

        The evicted line needs no writeback — write-through means the L2
        always holds the freshest data.
        """
        self.array.insert(self.line_of(addr), thread_id)

    @property
    def accesses(self) -> int:
        return self.load_hits + self.load_misses + self.store_hits + self.store_misses

"""Per-thread store gathering buffer (paper Section 3.1).

Write-through L1s make every store visible at the L2; the store
gathering buffer makes that affordable:

* an incoming store **merges** into an existing entry for the same line,
  otherwise it **allocates** a new entry (buffer full -> back-pressure);
* loads **bypass** buffered stores (Read-over-Write) after a dependence
  check; a load that hits a buffered store's line triggers a **partial
  flush** — that store and all older entries retire to the L2 first;
* when occupancy reaches the high-water mark ``n`` the buffer starts
  retiring stores (**retire-at-n**) and loads stop bypassing (**RoW
  inversion**) until occupancy drops below the mark.

The paper's configuration (Table 1): 8 entries, retire-at-6,
read bypassing, partial flush on read conflict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.common.records import AccessType, MemoryRequest


@dataclass
class _GatherEntry:
    line: int
    request: MemoryRequest   # representative request; gathered_stores counts merges
    must_flush: bool = False


class StoreGatherBuffer:
    """One thread's store gathering buffer at one L2 bank."""

    def __init__(self, entries: int = 8, high_water: int = 6) -> None:
        if entries < 1:
            raise ValueError("buffer needs at least one entry")
        if not 1 <= high_water <= entries:
            raise ValueError(
                f"high water {high_water} out of range for {entries} entries"
            )
        self.capacity = entries
        self.high_water = high_water
        self._entries: List[_GatherEntry] = []   # age order, oldest first
        # Merging keeps at most one entry per line, so a line index gives
        # O(1) merge/dependence lookups (these sit on per-cycle paths).
        self._by_line: dict = {}
        self._flush_count = 0  # entries currently marked must_flush
        # Instrumentation (Figure 7).
        self.stores_received = 0
        self.stores_merged = 0
        self.stores_retired = 0

    # ------------------------------------------------------------------ #
    # Store side.
    # ------------------------------------------------------------------ #

    def try_add_store(self, request: MemoryRequest) -> str:
        """Insert a store.  Returns "merged", "allocated", or "full"."""
        if request.access is not AccessType.WRITE:
            raise ValueError("store gathering buffer only accepts writes")
        entry = self._by_line.get(request.line)
        if entry is not None:
            entry.request.gathered_stores += 1
            self.stores_received += 1
            self.stores_merged += 1
            return "merged"
        if len(self._entries) >= self.capacity:
            return "full"
        entry = _GatherEntry(line=request.line, request=request)
        self._entries.append(entry)
        self._by_line[request.line] = entry
        self.stores_received += 1
        return "allocated"

    # ------------------------------------------------------------------ #
    # Load side.
    # ------------------------------------------------------------------ #

    def has_line(self, line: int) -> bool:
        return line in self._by_line

    def load_may_bypass(self, line: int) -> bool:
        """True when a load to ``line`` may be issued ahead of the stores:
        no same-line entry (dependence) and occupancy below the high-water
        mark (RoW inversion)."""
        if len(self._entries) >= self.high_water:
            return False
        return not self.has_line(line)

    def request_flush(self, line: int) -> bool:
        """Partial flush: mark the conflicting entry and all older ones
        for retirement.  Returns True when a conflict existed."""
        for index, entry in enumerate(self._entries):
            if entry.line == line:
                for older in self._entries[: index + 1]:
                    if not older.must_flush:
                        older.must_flush = True
                        self._flush_count += 1
                return True
        return False

    # ------------------------------------------------------------------ #
    # Retirement side.
    # ------------------------------------------------------------------ #

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def flush_pending(self) -> bool:
        return self._flush_count > 0

    def wants_retire(self) -> bool:
        """Retire-at-n: drain while at/over the high-water mark, and
        always drain entries tagged by a partial flush."""
        return len(self._entries) >= self.high_water or self._flush_count > 0

    def peek_retire(self) -> Optional[MemoryRequest]:
        """The write request retirement would send next (oldest entry)."""
        if not self._entries:
            return None
        return self._entries[0].request

    def pop_retire(self) -> MemoryRequest:
        if not self._entries:
            raise RuntimeError("pop_retire on an empty buffer")
        entry = self._entries.pop(0)
        del self._by_line[entry.line]
        if entry.must_flush:
            self._flush_count -= 1
        self.stores_retired += 1
        return entry.request

    def gathering_rate(self) -> float:
        """Fraction of stores absorbed by merging (Figure 7 metric)."""
        if not self.stores_received:
            return 0.0
        return self.stores_merged / self.stores_received

"""Replacement-policy interface and the plain LRU baseline.

Policies see a :class:`SetView` — a snapshot of one set's ownership,
validity, and recency — and return the way to victimize.  The VPC
Capacity Manager (:mod:`repro.core.capacity`) implements this interface
with the paper's thread-aware quota policy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class SetView:
    """Snapshot of a cache set handed to replacement policies.

    ``lru_order`` lists way indices least-recently-used first, covering
    every way (valid or not); policies must only pick valid ways.
    ``index`` is the set's position in its array (-1 for synthetic views
    built directly in tests) — instrumented policies use it to name
    per-set occupancy counter tracks.
    """

    ways: int
    owners: List[int]
    valid: List[bool]
    lru_order: List[int]
    index: int = -1

    def valid_lru_ways(self) -> List[int]:
        return [w for w in self.lru_order if self.valid[w]]

    def occupancy(self, thread_id: int) -> int:
        return sum(
            1 for w in range(self.ways) if self.valid[w] and self.owners[w] == thread_id
        )


class ReplacementPolicy(ABC):
    """Chooses a victim way when a set is full.

    Telemetry follows the engine-wide contract: ``_trace`` is ``None``
    until :meth:`CMPSystem.attach_telemetry` points it at a bus (one
    ``is not None`` test per victimization when disabled).  ``clock``
    supplies the current simulated cycle — ``choose_victim`` itself is
    timing-free by design, so the system wires a clock in alongside the
    bus rather than widening the policy interface.
    """

    _trace = None
    trace_name = "capacity"
    clock = None

    @abstractmethod
    def choose_victim(self, set_view: SetView, requester: int) -> int:
        """Return the way to evict for ``requester``'s incoming line."""


class LRUPolicy(ReplacementPolicy):
    """Thread-oblivious global LRU — the conventional baseline."""

    def choose_victim(self, set_view: SetView, requester: int) -> int:
        candidates = set_view.valid_lru_ways()
        if not candidates:
            raise RuntimeError("choose_victim called on a set with no valid lines")
        return candidates[0]

"""One shared L2 cache bank (paper Figure 2b).

The bank contains, per thread: a store gathering buffer and an input
load queue; and shared: cache-controller state machines (8 per thread),
the tag array, the data array, and the bank data bus.  Each shared
resource has an arbiter (FCFS, RoW-FCFS, or VPC — injected by the L2).

Request flows (timings from Table 1, processor cycles):

* read hit:   tag(4) -> data array(8) -> data bus(8/line, critical word
  after the first 2-cycle beat) -> response to core.
* read miss:  tag(4) -> DRAM -> data bus(8, from-memory path; the bus
  arbiter resolves collisions with array data) -> fill: tag update(4),
  [victim writeback read(8) if dirty], line install write(8).
* write hit:  tag(4) -> data array write(16 — two back-to-back ECC
  accesses, modelled as service_quanta=2) -> line dirty.
* write miss: tag(4) -> DRAM fetch -> fill tag(4) -> [writeback read]
  -> fill-and-merge write(16) -> dirty.

All internal accesses (fill tag updates, fill writes, writeback reads)
go through the same arbiters, charged to the thread that caused them —
a missing thread spends its own bandwidth allocation on its fills, which
is what lets the VPC bandwidth guarantee hold under miss-heavy threads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import IntEnum, auto
from typing import Callable, Deque, Dict, List, Optional

from repro.cache.cache_array import CacheArray, Eviction
from repro.cache.store_gather import StoreGatherBuffer
from repro.common.config import L2Config
from repro.common.latch import NEVER, VariableDelayQueue
from repro.common.records import AccessType, MemoryRequest
from repro.common.stats import Counters, UtilizationMeter
from repro.core.arbiter import Arbiter, ArbiterEntry
from repro.telemetry.events import (
    CAT_REQUEST,
    CAT_RESOURCE,
    CAT_SGB,
    PH_BEGIN,
    PH_COMPLETE,
    PH_INSTANT,
    TraceEvent,
)


class SMState(IntEnum):
    TAG_WAIT = auto()
    TAG_BUSY = auto()
    MISSTAG_WAIT = auto()
    MISSTAG_BUSY = auto()
    DATA_WAIT = auto()
    DATA_BUSY = auto()
    BUS_WAIT = auto()
    BUS_BUSY = auto()
    MEM_WAIT = auto()
    MEM_PENDING = auto()
    FILLTAG_WAIT = auto()
    FILLTAG_BUSY = auto()
    WBDATA_WAIT = auto()
    WBDATA_BUSY = auto()
    FILLDATA_WAIT = auto()
    FILLDATA_BUSY = auto()
    WBMEM_WAIT = auto()
    DONE = auto()


@dataclass(slots=True)
class StateMachine:
    """A cache-controller state machine tracking one in-flight request."""

    sm_id: int
    request: MemoryRequest
    state: SMState = SMState.TAG_WAIT
    hit: bool = False
    eviction: Optional[Eviction] = None
    victim_line: Optional[int] = None

    @property
    def thread_id(self) -> int:
        return self.request.thread_id


# Event kinds scheduled in the bank's event queue.
_TAG_DONE = 0
_DATA_DONE = 1
_BUS_DONE = 2
_RESPOND = 3
_FILLTAG_DONE = 4
_WBDATA_DONE = 5
_FILLDATA_DONE = 6
_MEM_DATA = 7
_MISSTAG_DONE = 8

# Occupancy-slice labels for the telemetry exporter, keyed by the
# *_BUSY state a grant moves the state machine into.
_STAGE_NAMES = {
    SMState.TAG_BUSY: "tag",
    SMState.MISSTAG_BUSY: "misstag",
    SMState.FILLTAG_BUSY: "filltag",
    SMState.DATA_BUSY: "data",
    SMState.WBDATA_BUSY: "wbdata",
    SMState.FILLDATA_BUSY: "filldata",
    SMState.BUS_BUSY: "bus",
}


class _MemDataCallback:
    """Memory-completion callback for one in-flight miss.

    A module-level class (not a closure) so banks with outstanding DRAM
    reads survive a checkpoint pickle (repro.resilience.snapshot).
    """

    __slots__ = ("bank", "sm")

    def __init__(self, bank: "CacheBank", sm: "StateMachine") -> None:
        self.bank = bank
        self.sm = sm

    def __call__(self, cycle: int) -> None:
        self.bank._events.push_at(cycle, (_MEM_DATA, self.sm))


class _Resource:
    """A shared resource: arbiter + busy window + utilization meter."""

    def __init__(self, name: str, arbiter: Arbiter, base_latency: int) -> None:
        self.name = name
        self.arbiter = arbiter
        self.base_latency = base_latency
        self.meter = UtilizationMeter(name)

    def free(self, now: int) -> bool:
        return self.meter.is_free(now)

    def grant(self, now: int) -> Optional[ArbiterEntry]:
        if not self.free(now) or len(self.arbiter) == 0:
            return None
        entry = self.arbiter.select(now)
        if entry is None:
            return None
        self.meter.mark_busy(now, self.base_latency * entry.service_quanta)
        return entry


class CacheBank:
    """One bank of the shared L2 cache."""

    def __init__(
        self,
        bank_id: int,
        n_threads: int,
        config: L2Config,
        array: CacheArray,
        arbiter_factory: Callable[[str, int], Arbiter],
        respond: Callable[[MemoryRequest, int], None],
        memory,
    ) -> None:
        self.bank_id = bank_id
        self.n_threads = n_threads
        self.config = config
        self.array = array
        self.respond = respond
        self.memory = memory

        self.tag = _Resource("tag", arbiter_factory("tag", config.tag_latency),
                             config.tag_latency)
        self.data = _Resource("data", arbiter_factory("data", config.data_read_latency),
                              config.data_read_latency)
        self.bus = _Resource("bus", arbiter_factory("bus", config.bus_line_cycles),
                             config.bus_line_cycles)
        self.resources = (self.tag, self.data, self.bus)

        self.sgbs = [
            StoreGatherBuffer(config.sgb_entries, config.sgb_high_water)
            for _ in range(n_threads)
        ]
        self._pending_stores: List[Deque[MemoryRequest]] = [
            deque() for _ in range(n_threads)
        ]
        self._load_q: List[Deque[MemoryRequest]] = [deque() for _ in range(n_threads)]

        self._sms: Dict[int, StateMachine] = {}
        self._next_sm_id = 0
        self._sm_count = [0] * n_threads
        self._active_lines: Dict[int, int] = {}
        self._rr_pointer = n_threads - 1  # round-robin admission pointer

        self._events: VariableDelayQueue = VariableDelayQueue()
        self._mem_wait: Deque[StateMachine] = deque()
        self._wbmem_wait: Deque[StateMachine] = deque()

        self.counters = Counters()
        # Telemetry (repro.telemetry): None = disabled = free.
        self._trace = None
        # Cycle accounting (repro.telemetry.cycles): same contract.
        self._acct = None
        # Request-scope tracer (repro.telemetry.requests): same contract.
        self._rtrace = None

    # ------------------------------------------------------------------ #
    # Input side (called by the L2 when the crossbar delivers a request).
    # ------------------------------------------------------------------ #

    def accept(self, request: MemoryRequest, now: int) -> None:
        request.arrived_bank_cycle = now
        if self._trace is not None:
            self._trace.emit(TraceEvent(
                ts=now, phase=PH_BEGIN, category=CAT_REQUEST,
                name="store" if request.is_write else
                     ("prefetch" if request.is_prefetch else "load"),
                track=f"t{request.thread_id}", tid=request.thread_id,
                id=request.req_id,
                args={"line": request.line, "bank": self.bank_id},
            ))
        if request.access is AccessType.WRITE:
            self._pending_stores[request.thread_id].append(request)
        else:
            if self._acct is not None:
                self._acct.bank_accepted(request.thread_id, now)
            if self._rtrace is not None:
                self._rtrace.bank_accepted(request, now)
            self._load_q[request.thread_id].append(request)

    # ------------------------------------------------------------------ #
    # Per-cycle advance.
    # ------------------------------------------------------------------ #

    def tick(self, now: int) -> None:
        for event in self._events.pop_ready(now):
            self._handle_event(event[0], event[1], now)
        self._admit_stores(now)
        self._admit_to_controller(now)
        self._retry_memory(now)
        for resource in self.resources:
            self._grant(resource, now)

    def busy(self) -> bool:
        """True while any work is in flight (used to drain simulations)."""
        if self._sms or len(self._events) or self._mem_wait or self._wbmem_wait:
            return True
        if any(self._pending_stores) or any(self._load_q):
            return True
        return any(sgb.occupancy for sgb in self.sgbs)

    def next_event(self, now: int) -> int:
        """Earliest cycle >= ``now`` at which ``tick`` could change state.

        A conservative lower bound that is exact where it skips — every
        admission/retry path below is checked with the same (pure)
        predicates ``tick`` itself uses, so a cycle reported as skippable
        would provably have been a no-op:

        * ``_retry_memory`` only acts when the memory interface can
          accept the *head* waiter (the loop breaks on the head);
        * ``_admit_stores`` only acts when the head pending store merges
          or the SGB has a free entry;
        * ``_admit_to_controller`` only touches a thread with a free
          state machine, and then only when it has a queued load (which
          may mutate flush state) or a retirement-eligible SGB;
        * ``_grant`` never consults an arbiter while the resource meter
          is busy, so jumping to ``busy_until`` drops no ``select``
          calls (and their virtual-time updates).
        """
        if self._mem_wait and self.memory.can_accept_read(
            self._mem_wait[0].thread_id
        ):
            return now
        if self._wbmem_wait and self.memory.can_accept_write(
            self._wbmem_wait[0].thread_id
        ):
            return now
        # Hot path (the event kernel calls this every attempt): read the
        # gather buffers' internals directly instead of going through
        # occupancy/has_line/wants_retire — property and generator
        # overhead here is measurable on scan-hostile workloads.
        sm_limit = self.config.state_machines_per_thread
        sm_count = self._sm_count
        pending_stores = self._pending_stores
        load_q = self._load_q
        for tid, sgb in enumerate(self.sgbs):
            entries = sgb._entries
            pending = pending_stores[tid]
            if pending and (
                len(entries) < sgb.capacity or pending[0].line in sgb._by_line
            ):
                return now
            if sm_count[tid] < sm_limit and (
                load_q[tid]
                or len(entries) >= sgb.high_water
                or sgb._flush_count
            ):
                return now
        nxt = NEVER
        heap = self._events._heap
        if heap:
            head = heap[0][0]
            nxt = head if head > now else now
        for resource in self.resources:
            if len(resource.arbiter):
                busy = resource.meter.busy_until
                if busy < nxt:
                    nxt = busy if busy > now else now
        return nxt

    # ------------------------------------------------------------------ #
    # Store gathering admission.
    # ------------------------------------------------------------------ #

    def _admit_stores(self, now: int) -> None:
        for tid in range(self.n_threads):
            pending = self._pending_stores[tid]
            sgb = self.sgbs[tid]
            while pending:
                outcome = sgb.try_add_store(pending[0])
                if outcome == "full":
                    break
                request = pending.popleft()
                # Acknowledge so the core releases a store-queue slot.
                self.respond(request, now)
                self.counters.add("stores_received")
                if outcome == "merged":
                    self.counters.add("stores_gathered")
                    if self._trace is not None:
                        self._trace.emit(TraceEvent(
                            ts=now, phase=PH_INSTANT, category=CAT_SGB,
                            name="gather", track=f"bank{self.bank_id}.sgb",
                            tid=tid, args={"line": request.line},
                        ))

    # ------------------------------------------------------------------ #
    # Controller admission (round-robin across threads, Section 3.1).
    # ------------------------------------------------------------------ #

    def _thread_candidate(self, tid: int):
        """The next request thread ``tid`` offers the controller:
        bypassing loads first (RoW), else a retiring store."""
        sgb = self.sgbs[tid]
        loads = self._load_q[tid]
        if loads:
            line = loads[0].line
            if sgb.load_may_bypass(line):
                return loads[0], "load"
            # Partial flush: a same-line store (and its elders) must
            # retire before this load may proceed.
            sgb.request_flush(line)
        if sgb.wants_retire():
            retiring = sgb.peek_retire()
            if retiring is not None:
                return retiring, "store"
        return None, ""

    def _admit_to_controller(self, now: int) -> None:
        for _ in range(self.n_threads):
            self._rr_pointer = (self._rr_pointer + 1) % self.n_threads
            tid = self._rr_pointer
            if self._sm_count[tid] >= self.config.state_machines_per_thread:
                continue
            request, kind = self._thread_candidate(tid)
            if request is None or request.line in self._active_lines:
                continue
            if kind == "load":
                self._load_q[tid].popleft()
            else:
                self.sgbs[tid].pop_retire()
                self.counters.add("writes_admitted")
            self._start_sm(request, now)
            return  # one admission per cycle per bank

    def _start_sm(self, request: MemoryRequest, now: int) -> None:
        sm = StateMachine(sm_id=self._next_sm_id, request=request)
        self._next_sm_id += 1
        self._sms[sm.sm_id] = sm
        self._sm_count[request.thread_id] += 1
        self._active_lines[request.line] = (
            self._active_lines.get(request.line, 0) + 1
        )
        request.entered_arbitration_cycle = now
        self.counters.add("requests")
        if request.is_write:
            self.counters.add("write_requests")
        else:
            self.counters.add("read_requests")
        self._enqueue(self.tag, sm, now)

    def _free_sm(self, sm: StateMachine, now: int) -> None:
        sm.state = SMState.DONE
        sm.request.completed_cycle = now
        del self._sms[sm.sm_id]
        self._sm_count[sm.request.thread_id] -= 1
        count = self._active_lines[sm.request.line]
        if count == 1:
            del self._active_lines[sm.request.line]
        else:
            self._active_lines[sm.request.line] = count - 1

    # ------------------------------------------------------------------ #
    # Resource arbitration.
    # ------------------------------------------------------------------ #

    def _enqueue(self, resource: _Resource, sm: StateMachine, now: int) -> None:
        is_write_access = False
        quanta = 1
        if resource is self.data:
            if sm.state in (SMState.TAG_BUSY, SMState.DATA_WAIT) and sm.request.is_write:
                # Store hit: ECC read-merge-write pair (Eq. 4's 2*R.L case).
                is_write_access = True
                quanta = 2
                sm.state = SMState.DATA_WAIT
            elif sm.state in (SMState.FILLDATA_WAIT,):
                # Line install: full-line write; a write-miss fill also
                # merges the store data, costing the ECC pair.
                is_write_access = True
                quanta = 2 if sm.request.is_write else 1
            elif sm.state == SMState.WBDATA_WAIT:
                quanta = 1  # victim read-out for writeback
            else:
                sm.state = SMState.DATA_WAIT
        entry = ArbiterEntry(
            thread_id=sm.request.thread_id,
            payload=sm,
            is_write=is_write_access,
            is_prefetch=sm.request.is_prefetch,
            service_quanta=quanta,
        )
        resource.arbiter.enqueue(entry, now)

    def _grant(self, resource: _Resource, now: int) -> None:
        entry = resource.grant(now)
        if entry is None:
            return
        self._apply_grant(resource, entry, now)

    def _apply_grant(self, resource: _Resource, entry: ArbiterEntry,
                     now: int) -> None:
        """Stage transitions for a granted entry.  Split from ``_grant``
        so the batch kernel — which proves the resource free and the
        arbiter non-empty before selecting — can skip ``grant``'s
        re-checks while sharing this logic verbatim."""
        sm: StateMachine = entry.payload
        duration = resource.base_latency * entry.service_quanta
        if resource is self.tag:
            if sm.state == SMState.TAG_WAIT:
                sm.state = SMState.TAG_BUSY
                self._events.push_at(now + duration, (_TAG_DONE, sm))
            elif sm.state == SMState.MISSTAG_WAIT:
                sm.state = SMState.MISSTAG_BUSY
                self._events.push_at(now + duration, (_MISSTAG_DONE, sm))
            else:  # fill tag update
                sm.state = SMState.FILLTAG_BUSY
                self._events.push_at(now + duration, (_FILLTAG_DONE, sm))
        elif resource is self.data:
            if sm.state == SMState.DATA_WAIT:
                sm.state = SMState.DATA_BUSY
                self._events.push_at(now + duration, (_DATA_DONE, sm))
            elif sm.state == SMState.WBDATA_WAIT:
                sm.state = SMState.WBDATA_BUSY
                self._events.push_at(now + duration, (_WBDATA_DONE, sm))
            else:  # FILLDATA_WAIT
                sm.state = SMState.FILLDATA_BUSY
                self._events.push_at(now + duration, (_FILLDATA_DONE, sm))
        else:  # data bus
            sm.state = SMState.BUS_BUSY
            critical = now + self.config.bus_beat_cycles
            sm.request.critical_word_cycle = critical
            self._events.push_at(critical, (_RESPOND, sm))
            self._events.push_at(now + duration, (_BUS_DONE, sm))
        if self._trace is not None:
            self._trace.emit(TraceEvent(
                ts=now, phase=PH_COMPLETE, category=CAT_RESOURCE,
                name=_STAGE_NAMES[sm.state],
                track=f"bank{self.bank_id}.{resource.name}",
                tid=sm.thread_id, dur=duration,
                args={"req": sm.request.req_id},
            ))

    # ------------------------------------------------------------------ #
    # Event handling (stage completions).
    # ------------------------------------------------------------------ #

    def _handle_event(self, kind: int, sm: StateMachine, now: int) -> None:
        if kind == _TAG_DONE:
            self._tag_done(sm, now)
        elif kind == _DATA_DONE:
            self._data_done(sm, now)
        elif kind == _RESPOND:
            self.respond(sm.request, now)
        elif kind == _BUS_DONE:
            self._bus_done(sm, now)
        elif kind == _FILLTAG_DONE:
            self._filltag_done(sm, now)
        elif kind == _WBDATA_DONE:
            self._wbdata_done(sm, now)
        elif kind == _FILLDATA_DONE:
            self._filldata_done(sm, now)
        elif kind == _MEM_DATA:
            self._memory_data(sm, now)
        elif kind == _MISSTAG_DONE:
            sm.state = SMState.MEM_WAIT
            self._mem_wait.append(sm)
            if self._acct is not None and sm.request.is_read:
                self._acct.mem_queued(sm.thread_id, now)
            if self._rtrace is not None and sm.request.is_read:
                self._rtrace.mem_queued(sm.request, now)
        else:
            raise RuntimeError(f"unknown bank event kind {kind}")

    def _tag_done(self, sm: StateMachine, now: int) -> None:
        sm.request.tag_done_cycle = now
        sm.hit = self.array.lookup(sm.request.line)
        if sm.hit:
            self.counters.add("write_hits" if sm.request.is_write else "read_hits")
            sm.state = SMState.DATA_WAIT
            self._enqueue(self.data, sm, now)
            return
        self.counters.add("write_misses" if sm.request.is_write else "read_misses")
        if self.config.miss_status_tag_access:
            # Miss-status / castout lookup: a second tag-array access
            # before the request leaves for memory (Section 5.2).
            sm.state = SMState.MISSTAG_WAIT
            self._enqueue(self.tag, sm, now)
        else:
            sm.state = SMState.MEM_WAIT
            self._mem_wait.append(sm)
            if self._acct is not None and sm.request.is_read:
                self._acct.mem_queued(sm.thread_id, now)
            if self._rtrace is not None and sm.request.is_read:
                self._rtrace.mem_queued(sm.request, now)

    def _data_done(self, sm: StateMachine, now: int) -> None:
        sm.request.data_done_cycle = now
        if sm.request.is_write:
            self.array.set_dirty(sm.request.line)
            self._free_sm(sm, now)
            return
        sm.state = SMState.BUS_WAIT
        self._enqueue(self.bus, sm, now)

    def _bus_done(self, sm: StateMachine, now: int) -> None:
        if sm.hit:
            self._free_sm(sm, now)
            return
        # Miss path: the line just streamed to the processor from memory;
        # now install it (tag update, then possibly writeback, then write).
        sm.state = SMState.FILLTAG_WAIT
        self._enqueue(self.tag, sm, now)

    def _memory_data(self, sm: StateMachine, now: int) -> None:
        if sm.request.is_read:
            sm.state = SMState.BUS_WAIT
            self._enqueue(self.bus, sm, now)
        else:
            sm.state = SMState.FILLTAG_WAIT
            self._enqueue(self.tag, sm, now)

    def _filltag_done(self, sm: StateMachine, now: int) -> None:
        sm.eviction = self.array.insert(sm.request.line, sm.thread_id)
        self.counters.add("fills")
        if sm.eviction.victim_dirty:
            sm.victim_line = sm.eviction.victim_line
            self.counters.add("writebacks")
            sm.state = SMState.WBDATA_WAIT
        else:
            sm.state = SMState.FILLDATA_WAIT
        self._enqueue(self.data, sm, now)

    def _wbdata_done(self, sm: StateMachine, now: int) -> None:
        sm.state = SMState.WBMEM_WAIT
        self._wbmem_wait.append(sm)

    def _filldata_done(self, sm: StateMachine, now: int) -> None:
        if sm.request.is_write:
            self.array.set_dirty(sm.request.line)
        self._free_sm(sm, now)

    # ------------------------------------------------------------------ #
    # Memory interface.
    # ------------------------------------------------------------------ #

    def _retry_memory(self, now: int) -> None:
        while self._mem_wait:
            sm = self._mem_wait[0]
            if not self.memory.can_accept_read(sm.thread_id):
                break
            self._mem_wait.popleft()
            sm.state = SMState.MEM_PENDING
            self.memory.enqueue_read(
                sm.thread_id,
                sm.request.line,
                notify=self._make_mem_callback(sm),
                now=now,
                tracked=sm.request.is_read,
            )
        while self._wbmem_wait:
            sm = self._wbmem_wait[0]
            if not self.memory.can_accept_write(sm.thread_id):
                break
            self._wbmem_wait.popleft()
            assert sm.victim_line is not None
            self.memory.enqueue_write(sm.thread_id, sm.victim_line, now=now)
            sm.state = SMState.FILLDATA_WAIT
            self._enqueue(self.data, sm, now)

    def _make_mem_callback(self, sm: StateMachine):
        return _MemDataCallback(self, sm)

    # ------------------------------------------------------------------ #
    # Reporting.
    # ------------------------------------------------------------------ #

    def utilizations(self, cycles: int, snapshots=None) -> Dict[str, float]:
        """Per-resource utilization over ``cycles`` (optionally since a
        snapshot dict produced by :meth:`utilization_snapshot`)."""
        snapshots = snapshots or {}
        return {
            res.name: res.meter.utilization(cycles, snapshots.get(res.name, 0))
            for res in self.resources
        }

    def utilization_snapshot(self) -> Dict[str, int]:
        return {res.name: res.meter.snapshot() for res in self.resources}

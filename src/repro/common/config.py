"""System configuration (paper Table 1) and the private-machine transform.

All latencies are in *processor* cycles, exactly as Table 1 quotes them.
The half-frequency L2/crossbar clock domain is folded into the latencies
(see DESIGN.md, "Clocking").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

KIB = 1024
MIB = 1024 * KIB


@dataclass(frozen=True)
class CoreConfig:
    """Simplified out-of-order core (Table 1, processor rows).

    Prefetching is disabled by default — the paper disables the 970's
    prefetchers and names VPC-supported prefetching as future work; the
    knobs below enable a next-line prefetcher for that extension.
    """

    issue_width: int = 5          # dispatch-group width (20 groups x 5 insts)
    window_size: int = 100        # reorder-buffer capacity in instructions
    load_queue: int = 32
    store_queue: int = 32
    prefetch_enabled: bool = False
    prefetch_degree: int = 2      # next-line prefetches per demand miss


@dataclass(frozen=True)
class L1Config:
    """Private write-through L1 (Table 1: 16KB, 4-way, 64B, 2 cycles)."""

    size_bytes: int = 16 * KIB
    ways: int = 4
    line_size: int = 64
    latency: int = 2
    mshrs: int = 16

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_size)


@dataclass(frozen=True)
class L2Config:
    """Banked shared L2 (Table 1, L2 rows; latencies in processor cycles)."""

    banks: int = 2
    size_bytes: int = 16 * MIB
    ways: int = 32
    line_size: int = 64
    tag_latency: int = 4            # tag-array access latency AND occupancy
    data_read_latency: int = 8      # one data-array access
    data_write_latency: int = 16    # two back-to-back accesses (ECC read-merge-write)
    bus_bytes_per_beat: int = 16    # 16-byte bus at half core frequency
    bus_beat_cycles: int = 2        # => one beat every 2 processor cycles
    state_machines_per_thread: int = 8
    sgb_entries: int = 8            # store gathering buffer entries per thread
    sgb_high_water: int = 6         # retire-at-6 policy
    fill_tag_update_latency: int = 4
    # Misses perform an extra tag access (miss-status/castout lookup)
    # before going to memory — "many L2 cache misses ... require multiple
    # tag array accesses" (paper Section 5.2, Figure 6 discussion).
    miss_status_tag_access: bool = True

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.banks * self.ways * self.line_size)

    @property
    def bus_line_cycles(self) -> int:
        """Cycles the data bus is busy transferring one full line."""
        beats = -(-self.line_size // self.bus_bytes_per_beat)  # ceil division
        return beats * self.bus_beat_cycles


@dataclass(frozen=True)
class CrossbarConfig:
    """Core <-> L2 interconnect (Table 1: half frequency, 2-cycle latency).

    Only the *request* direction pays the crossbar latency: each bank's
    return data bus is "connected to all processors on the crossbar"
    (Figure 2a), so the critical-word cycle stamped by the bank is the
    cycle the processor sees the data (Figure 4's 16-cycle total =
    2 crossbar + 4 tag + 8 data array + first 2-cycle bus beat).
    """

    latency: int = 2                # request direction, in processor cycles
    response_latency: int = 0       # data bus reaches the cores directly


@dataclass(frozen=True)
class MemoryConfig:
    """DDR2-800 memory behind an on-chip controller (Table 1, bottom rows).

    One private channel per thread, closed-page policy.  Timing parameters
    are in *memory* cycles (DDR2-800 command clock = 400 MHz; with a 2 GHz
    core, ``clock_divider`` = 5 processor cycles per memory cycle).
    """

    channels_per_thread: int = 1
    # "private": one channel per thread, the paper's isolation setup.
    # "shared": all threads share one channel, scheduled by
    # ``shared_scheduler`` ("fq" = the Nesbit et al. fair-queuing memory
    # controller the VPM framework assumes; "fcfs" = the conventional
    # interference-prone baseline).
    sharing: str = "private"
    shared_scheduler: str = "fq"
    ranks_per_channel: int = 2
    banks_per_rank: int = 8
    clock_divider: int = 5
    t_rcd: int = 5                  # activate -> column command
    t_cl: int = 5                   # column read -> first data
    t_wl: int = 4                   # column write -> first data (CL - 1)
    t_rp: int = 5                   # precharge
    burst_cycles: int = 4           # 64B over an 8B DDR bus: 8 beats = 4 clocks
    transaction_buffer: int = 16    # per-thread read transaction entries
    write_buffer: int = 8           # per-thread write entries


@dataclass(frozen=True)
class VPCAllocation:
    """Software-visible VPC control registers for the whole cache.

    ``bandwidth_shares`` is phi_i (fraction of tag/data/bus bandwidth) and
    ``capacity_shares`` is beta_i (fraction of cache ways).  The paper
    restricts discussion to a single phi per thread applied to all three
    bandwidth resources; we keep the same restriction at this level (the
    arbiters themselves accept arbitrary shares).
    """

    bandwidth_shares: List[float] = field(default_factory=lambda: [0.25] * 4)
    capacity_shares: List[float] = field(default_factory=lambda: [0.25] * 4)

    def validate(self, n_threads: int) -> None:
        for name, shares in (
            ("bandwidth_shares", self.bandwidth_shares),
            ("capacity_shares", self.capacity_shares),
        ):
            if len(shares) != n_threads:
                raise ValueError(
                    f"{name} has {len(shares)} entries for {n_threads} threads"
                )
            if any(s < 0 for s in shares):
                raise ValueError(f"{name} contains a negative share: {shares}")
            if sum(shares) > 1.0 + 1e-9:
                raise ValueError(f"{name} over-allocates the resource: {shares}")

    @staticmethod
    def equal(n_threads: int) -> "VPCAllocation":
        share = 1.0 / n_threads
        return VPCAllocation([share] * n_threads, [share] * n_threads)


@dataclass(frozen=True)
class SystemConfig:
    """Complete CMP description (paper Table 1).

    ``l3`` is the optional shared L3 level ("if there were an L3 cache,
    it would be shared in a similar manner", Section 1.1); ``None``
    reproduces the paper's two-level hierarchy.  The field holds a
    ``repro.cache.l3.L3Config`` (kept as Any here to avoid a config ->
    cache import cycle).
    """

    n_threads: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: L1Config = field(default_factory=L1Config)
    l2: L2Config = field(default_factory=L2Config)
    crossbar: CrossbarConfig = field(default_factory=CrossbarConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    l3: Optional[object] = None
    arbiter: str = "fcfs"           # "fcfs" | "row-fcfs" | "vpc"
    vpc: VPCAllocation = field(default_factory=lambda: VPCAllocation.equal(4))

    def validate(self) -> "SystemConfig":
        if self.n_threads < 1:
            raise ValueError("need at least one thread")
        if self.arbiter not in ("fcfs", "row-fcfs", "vpc"):
            raise ValueError(f"unknown arbiter policy: {self.arbiter!r}")
        if self.l1.line_size != self.l2.line_size:
            raise ValueError("L1/L2 line sizes must match")
        self.vpc.validate(self.n_threads)
        return self


def baseline_config(
    n_threads: int = 4,
    banks: int = 2,
    arbiter: str = "fcfs",
    vpc: Optional[VPCAllocation] = None,
) -> SystemConfig:
    """The paper's baseline CMP: Table 1 with a chosen thread/bank count."""
    if vpc is None:
        vpc = VPCAllocation.equal(n_threads)
    return SystemConfig(
        n_threads=n_threads,
        l2=L2Config(banks=banks),
        arbiter=arbiter,
        vpc=vpc,
    ).validate()


def private_equivalent(
    config: SystemConfig, phi: float, beta: float
) -> SystemConfig:
    """A uniprocessor whose private cache matches a (phi, beta) VPC.

    Section 5.3: "the private cache has the same number of sets as the
    shared cache and beta * <ways> cache ways.  In the private cache all
    resource latencies are scaled by 1/phi".  This is the machine used to
    compute a thread's *target IPC*.
    """
    if not 0.0 < phi <= 1.0:
        raise ValueError(f"phi must be in (0, 1], got {phi}")
    if not 0.0 < beta <= 1.0:
        raise ValueError(f"beta must be in (0, 1], got {beta}")
    ways = max(1, round(config.l2.ways * beta))

    def scaled(latency: int) -> int:
        return max(1, round(latency / phi))

    l2 = replace(
        config.l2,
        ways=ways,
        # Keep the set count identical: shrink total size with the ways.
        size_bytes=config.l2.sets * config.l2.banks * ways * config.l2.line_size,
        tag_latency=scaled(config.l2.tag_latency),
        data_read_latency=scaled(config.l2.data_read_latency),
        data_write_latency=scaled(config.l2.data_write_latency),
        bus_beat_cycles=scaled(config.l2.bus_beat_cycles),
        fill_tag_update_latency=scaled(config.l2.fill_tag_update_latency),
    )
    return replace(
        config,
        n_threads=1,
        l2=l2,
        arbiter="row-fcfs",   # the paper's uniprocessor baseline policy
        vpc=VPCAllocation([1.0], [1.0]),
    ).validate()

"""Request records shared by every layer of the simulator.

A :class:`MemoryRequest` is created by a core (or directly by a test) and
travels: core -> crossbar -> L2 bank (store gathering, controller state
machine, tag array, data array, data bus) -> possibly the memory
controller -> back to the core.  The record carries lifecycle timestamps
so experiments can audit per-stage latency (used by the Figure-4 timing
reproduction).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import IntEnum


class AccessType(IntEnum):
    """Kind of L2 access.  Values are stable (used as array indices)."""

    READ = 0
    WRITE = 1


_request_ids = itertools.count()


@dataclass(slots=True)
class MemoryRequest:
    """A single L2 cache request.

    ``addr`` is a byte address; ``line`` is the cache-line address
    (``addr // line_size``) and is what every structure beyond the core
    keys on.  ``seq`` is the issuing core's instruction sequence number,
    used to unblock the core's window when a load completes.

    Slotted: one is created per memory operation, so construction cost
    is engine-hot.  ``req_id`` must keep resolving ``_request_ids``
    through the module global at call time — the checkpoint restore path
    rebinds it (repro.resilience.snapshot).
    """

    thread_id: int
    addr: int
    access: AccessType
    line: int
    seq: int = -1
    issued_cycle: int = -1
    # Lifecycle timestamps (processor cycles), filled in as the request
    # moves through the bank.  -1 means "has not reached that stage".
    arrived_bank_cycle: int = -1
    entered_arbitration_cycle: int = -1
    tag_done_cycle: int = -1
    data_done_cycle: int = -1
    critical_word_cycle: int = -1
    completed_cycle: int = -1
    # True when this request was produced by merging one or more stores in
    # the store gathering buffer (instrumentation for Figure 7).
    gathered_stores: int = 0
    # True for requests the L2 generated itself (line fills, writebacks).
    is_internal: bool = False
    # True for hardware-prefetch reads (lower intra-thread priority than
    # demand reads in the VPC arbiters; see repro.cpu.prefetch).
    is_prefetch: bool = False
    req_id: int = field(default_factory=lambda: next(_request_ids))

    @property
    def is_read(self) -> bool:
        return self.access is AccessType.READ

    @property
    def is_write(self) -> bool:
        return self.access is AccessType.WRITE

    def __repr__(self) -> str:  # compact, for debugging traces
        kind = "R" if self.is_read else "W"
        return f"<{kind} t{self.thread_id} line={self.line:#x} id={self.req_id}>"


def make_request(
    thread_id: int,
    addr: int,
    access: AccessType,
    line_size: int,
    seq: int = -1,
    issued_cycle: int = -1,
) -> MemoryRequest:
    """Build a request, deriving the line address from ``addr``."""
    if addr < 0:
        raise ValueError(f"negative address: {addr}")
    if line_size <= 0 or line_size & (line_size - 1):
        raise ValueError(f"line_size must be a positive power of two: {line_size}")
    return MemoryRequest(
        thread_id=thread_id,
        addr=addr,
        access=access,
        line=addr // line_size,
        seq=seq,
        issued_cycle=issued_cycle,
    )

"""Statistics primitives: utilization meters, counters, and summaries.

Every shared resource owns a :class:`UtilizationMeter`; the experiments
read utilizations over the *measurement* interval only, so meters support
snapshot/interval arithmetic (warmup exclusion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List


class UtilizationMeter:
    """Tracks how many cycles a resource was busy.

    ``mark_busy(start, duration)`` is called when an access is granted;
    overlapping grants are a modelling bug, so the meter asserts
    monotonically non-overlapping usage.  Slotted: ``mark_busy`` runs on
    every grant of every shared resource.
    """

    __slots__ = ("name", "busy_cycles", "_busy_until")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.busy_cycles = 0
        self._busy_until = 0

    def mark_busy(self, start: int, duration: int) -> None:
        if duration < 0:
            raise ValueError(f"{self.name}: negative duration {duration}")
        if start < self._busy_until:
            raise RuntimeError(
                f"{self.name}: overlapping grant at {start}, busy until "
                f"{self._busy_until}"
            )
        self.busy_cycles += duration
        self._busy_until = start + duration

    @property
    def busy_until(self) -> int:
        return self._busy_until

    def is_free(self, now: int) -> bool:
        return now >= self._busy_until

    def utilization(self, total_cycles: int, since_busy: int = 0) -> float:
        """Fraction of ``total_cycles`` the resource was busy."""
        if total_cycles <= 0:
            return 0.0
        return (self.busy_cycles - since_busy) / total_cycles

    def snapshot(self) -> int:
        """Busy-cycle count for later interval subtraction."""
        return self.busy_cycles


@dataclass
class Counters:
    """A named bag of integer counters with snapshot support."""

    values: Dict[str, int] = field(default_factory=dict)

    def add(self, name: str, amount: int = 1) -> None:
        self.values[name] = self.values.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self.values.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        return dict(self.values)

    def since(self, snap: Dict[str, int]) -> Dict[str, int]:
        keys = set(self.values) | set(snap)
        return {k: self.values.get(k, 0) - snap.get(k, 0) for k in keys}


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; the paper's headline throughput metric.

    Raises on non-positive inputs — a zero normalized IPC would make the
    harmonic mean undefined, and hiding that would hide a starved thread.
    """
    vals: List[float] = list(values)
    if not vals:
        raise ValueError("harmonic mean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError(f"harmonic mean requires positive values: {vals}")
    return len(vals) / sum(1.0 / v for v in vals)


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 when every thread gets equal (normalized) throughput, ``1/n``
    when one thread takes everything.  Zero-throughput vectors index to
    0.0 rather than raising — an all-stalled window is maximally unfair
    information, not an error.
    """
    vals: List[float] = list(values)
    if not vals:
        raise ValueError("Jain index of an empty sequence")
    if any(v < 0 for v in vals):
        raise ValueError(f"Jain index requires non-negative values: {vals}")
    square_sum = sum(v * v for v in vals)
    if square_sum == 0.0:
        return 0.0
    total = sum(vals)
    return (total * total) / (len(vals) * square_sum)


def weighted_mean(values: Iterable[float], weights: Iterable[float]) -> float:
    vals, wts = list(values), list(weights)
    if len(vals) != len(wts):
        raise ValueError("values and weights differ in length")
    total = sum(wts)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return sum(v * w for v, w in zip(vals, wts)) / total

"""Simulation-kernel primitives shared across the `repro` packages."""

from repro.common.config import (
    CoreConfig,
    CrossbarConfig,
    L1Config,
    L2Config,
    MemoryConfig,
    SystemConfig,
    VPCAllocation,
    baseline_config,
    private_equivalent,
)
from repro.common.latch import DelayLine, VariableDelayQueue
from repro.common.records import AccessType, MemoryRequest, make_request
from repro.common.stats import Counters, UtilizationMeter, harmonic_mean, weighted_mean

__all__ = [
    "AccessType",
    "Counters",
    "CoreConfig",
    "CrossbarConfig",
    "DelayLine",
    "L1Config",
    "L2Config",
    "MemoryConfig",
    "MemoryRequest",
    "SystemConfig",
    "UtilizationMeter",
    "VPCAllocation",
    "VariableDelayQueue",
    "baseline_config",
    "harmonic_mean",
    "make_request",
    "private_equivalent",
    "weighted_mean",
]

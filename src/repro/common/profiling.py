"""cProfile plumbing behind the CLIs' ``--profile`` flags.

Profiling is how the kernel work stays honest: the batched kernel
(:mod:`repro.system.batch_kernel`) was built against these dumps, and
any future "the simulator feels slow" report should start with
``python -m repro <workload>... --profile out.pstats`` rather than
guesswork.  The pstats file feeds ``snakeviz``/``pstats`` offline; the
top-of-run console print gives the immediate headline.
"""

from __future__ import annotations

import cProfile
import pstats


def start_profile() -> cProfile.Profile:
    """An enabled profiler; pair with :func:`finish_profile`."""
    profiler = cProfile.Profile()
    profiler.enable()
    return profiler


def finish_profile(profiler: cProfile.Profile, path: str,
                   top: int = 20) -> None:
    """Stop ``profiler``, dump pstats to ``path``, print the hot list.

    The console report is sorted by *cumulative* time: for a layered
    simulator the interesting question is which subsystem a run lives
    in, not which leaf does the most arithmetic.
    """
    profiler.disable()
    profiler.dump_stats(path)
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    print(f"profile: pstats -> {path}; top {top} functions "
          "by cumulative time:")
    stats.print_stats(top)

"""Fixed-delay transport queues used to model interconnect latency.

A :class:`DelayLine` delivers items exactly ``delay`` cycles after they
are pushed, preserving push order — the behaviour of a pipelined link.
A :class:`VariableDelayQueue` (heap-based) delivers items at arbitrary
future cycles, used by the memory channel model.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Deque, Generic, Iterator, List, Tuple, TypeVar

T = TypeVar("T")

# Sentinel returned by ``next_event`` / ``next_ready_cycle`` style probes
# when a component has no internally scheduled work: any real cycle
# number compares smaller, so callers can min-combine without branching.
NEVER = 1 << 62


class DelayLine(Generic[T]):
    """FIFO with a constant transit delay (a pipelined wire)."""

    __slots__ = ("delay", "_items")

    def __init__(self, delay: int) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = delay
        self._items: Deque[Tuple[int, T]] = deque()

    def push(self, now: int, item: T) -> None:
        self._items.append((now + self.delay, item))

    def pop_ready(self, now: int) -> Iterator[T]:
        """Yield every item whose delivery time has arrived."""
        while self._items and self._items[0][0] <= now:
            yield self._items.popleft()[1]

    def peek_ready(self, now: int) -> bool:
        return bool(self._items) and self._items[0][0] <= now

    def next_ready_cycle(self) -> int:
        """Delivery cycle of the head item; ``NEVER`` when empty."""
        return self._items[0][0] if self._items else NEVER

    def __len__(self) -> int:
        return len(self._items)

    @property
    def in_flight(self) -> int:
        return len(self._items)


class VariableDelayQueue(Generic[T]):
    """Priority queue keyed by delivery cycle (stable for equal keys)."""

    __slots__ = ("_heap", "_tiebreak")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, T]] = []
        self._tiebreak = itertools.count()

    def push_at(self, ready_cycle: int, item: T) -> None:
        heapq.heappush(self._heap, (ready_cycle, next(self._tiebreak), item))

    def pop_ready(self, now: int) -> Iterator[T]:
        while self._heap and self._heap[0][0] <= now:
            yield heapq.heappop(self._heap)[2]

    def next_ready_cycle(self) -> int:
        """Cycle of the earliest pending item; -1 when empty."""
        return self._heap[0][0] if self._heap else -1

    def __len__(self) -> int:
        return len(self._heap)

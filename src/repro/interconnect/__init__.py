"""Core <-> L2 interconnect."""

from repro.interconnect.crossbar import Crossbar

__all__ = ["Crossbar"]

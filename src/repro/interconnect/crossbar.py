"""Core <-> L2 crossbar (paper Section 3.1, Figure 2a).

Each processor has private read/write ports into every cache bank, so
the request path is contention-free — the crossbar contributes latency
only (Table 1: 2 cycles at half core frequency, each direction).  The
*return* path contention lives on each bank's data bus, which is
modelled inside the bank; by the time a response enters the crossbar it
has already won bus arbitration.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.common.config import CrossbarConfig
from repro.common.latch import NEVER, DelayLine
from repro.common.records import MemoryRequest
from repro.telemetry.events import CAT_XBAR, PH_COMPLETE, TraceEvent


class Crossbar:
    """Pure-latency interconnect with per-core request/response lanes."""

    def __init__(self, n_cores: int, config: CrossbarConfig) -> None:
        if n_cores < 1:
            raise ValueError("crossbar needs at least one core")
        self.config = config
        self._requests: List[DelayLine] = [
            DelayLine(config.latency) for _ in range(n_cores)
        ]
        self._responses: List[DelayLine] = [
            DelayLine(config.response_latency) for _ in range(n_cores)
        ]
        # Telemetry (repro.telemetry): None = disabled = free.
        self._trace = None

    def send_request(self, core_id: int, request: MemoryRequest, now: int) -> None:
        if self._trace is not None:
            self._trace.emit(TraceEvent(
                ts=now, phase=PH_COMPLETE, category=CAT_XBAR,
                name="xbar-req", track=f"t{request.thread_id}",
                tid=request.thread_id, dur=self.config.latency,
                args={"req": request.req_id},
            ))
        self._requests[core_id].push(now, request)

    def deliver_requests(self, core_id: int, now: int) -> Iterator[MemoryRequest]:
        return self._requests[core_id].pop_ready(now)

    def send_response(self, core_id: int, request: MemoryRequest, now: int) -> None:
        if self._trace is not None:
            self._trace.emit(TraceEvent(
                ts=now, phase=PH_COMPLETE, category=CAT_XBAR,
                name="xbar-resp", track=f"t{request.thread_id}",
                tid=request.thread_id, dur=self.config.response_latency,
                args={"req": request.req_id},
            ))
        self._responses[core_id].push(now, request)

    def deliver_responses(self, core_id: int, now: int) -> Iterator[MemoryRequest]:
        return self._responses[core_id].pop_ready(now)

    def busy(self) -> bool:
        return any(len(line) for line in self._requests) or any(
            len(line) for line in self._responses
        )

    def next_event(self, now: int) -> int:
        """Earliest cycle at or after ``now`` with a deliverable item.

        Delay lines are FIFO, so the head of each lane bounds every item
        behind it; ``NEVER`` when all lanes are empty.
        """
        nxt = NEVER
        for lane in self._requests:
            items = lane._items
            if items and items[0][0] < nxt:
                nxt = items[0][0]
        for lane in self._responses:
            items = lane._items
            if items and items[0][0] < nxt:
                nxt = items[0][0]
        return nxt if nxt > now else now

"""Table 1: the modelled 2 GHz CMP system configuration."""

from __future__ import annotations

from repro.common.config import baseline_config
from repro.experiments.base import ExperimentResult, register


@register("table1")
def run(fast: bool = False) -> ExperimentResult:
    config = baseline_config()
    rows = [
        ("Processors", f"{config.n_threads} processors"),
        ("Issue width", f"{config.core.issue_width} per dispatch group"),
        ("Reorder window", f"{config.core.window_size} instructions"),
        ("Load/store queues",
         f"{config.core.load_queue} load / {config.core.store_queue} store"),
        ("D-Cache",
         f"{config.l1.size_bytes // 1024}KB private, {config.l1.ways}-way, "
         f"{config.l1.line_size}B lines, {config.l1.latency}-cycle, "
         f"{config.l1.mshrs} MSHRs"),
        ("L1-to-L2 interconnect",
         f"{config.crossbar.latency}-cycle crossbar, "
         f"{config.l2.bus_bytes_per_beat}B data bus per bank"),
        ("Store gathering buffer",
         f"{config.l2.sgb_entries} entries/thread, read bypassing, "
         f"retire-at-{config.l2.sgb_high_water}, partial flush"),
        ("L2 cache",
         f"{config.l2.banks} banks, {config.l2.size_bytes // (1024*1024)}MB, "
         f"{config.l2.ways}-way, {config.l2.line_size}B lines, "
         f"{config.l2.state_machines_per_thread} SMs/thread/bank, "
         f"{config.l2.tag_latency}-cycle tag, "
         f"{config.l2.data_read_latency}-cycle data array"),
        ("Memory controller",
         f"{config.memory.transaction_buffer} transaction / "
         f"{config.memory.write_buffer} write entries per thread, closed page"),
        ("SDRAM",
         f"{config.memory.channels_per_thread} channel/thread, "
         f"{config.memory.ranks_per_channel} ranks, "
         f"{config.memory.banks_per_rank} banks/rank, DDR2-800 timing "
         f"({config.memory.t_rcd}-{config.memory.t_cl}-{config.memory.t_rp})"),
    ]
    return ExperimentResult(
        exp_id="table1",
        title="2 GHz CMP system configuration (latencies in processor cycles)",
        headers=["parameter", "value"],
        rows=rows,
        notes=["mirrors paper Table 1; see repro.common.config defaults"],
    )

"""Figure 4: cache timing diagram of back-to-back reads to different banks.

Reproduces the paper's timing: a read hit delivers its critical word 16
processor cycles after the core issues it (2 crossbar + 4 tag + 8 data
array + first 2-cycle bus beat) and finishes the 64-byte line transfer
at cycle 22; a second read to the *other* bank pipelines behind it with
no structural conflict.
"""

from __future__ import annotations

from repro.common.config import VPCAllocation, baseline_config
from repro.cpu.isa import load, nonmem
from repro.experiments.base import ExperimentResult, register
from repro.system.cmp import CMPSystem


@register("fig4")
def run(fast: bool = False) -> ExperimentResult:
    config = baseline_config(n_threads=1, arbiter="row-fcfs",
                             vpc=VPCAllocation([1.0], [1.0]))
    line = config.l2.line_size
    # Two loads to consecutive lines -> different banks (line % 2).
    base = 1 << 30
    trace = iter([load(base), load(base + line), nonmem(1)])
    system = CMPSystem(config, [trace])

    # Pre-warm both lines into the L2 so the accesses are hits.
    for bank, addr in ((0, base), (1, base + line)):
        system.banks[system.bank_of(addr // line)].array.insert(addr // line, 0)

    requests = []
    original = system._respond

    def capture(request, now):
        requests.append(request)
        original(request, now)

    for bank in system.banks:
        bank.respond = capture
    system.run(80)

    loads = sorted(
        (r for r in requests if r.is_read), key=lambda r: r.issued_cycle
    )
    rows = []
    for index, request in enumerate(loads):
        rows.append((
            f"read{index + 1}(bank{system.bank_of(request.line)})",
            request.issued_cycle,
            request.arrived_bank_cycle - request.issued_cycle,
            request.tag_done_cycle - request.arrived_bank_cycle,
            request.data_done_cycle - request.tag_done_cycle,
            request.critical_word_cycle - request.data_done_cycle,
            request.critical_word_cycle - request.issued_cycle,
            request.completed_cycle - request.issued_cycle,
        ))
    return ExperimentResult(
        exp_id="fig4",
        title="Timing of back-to-back reads to different cache banks",
        headers=["access", "issue_cycle", "crossbar", "tag", "data_array",
                 "bus_beat", "critical_word_total", "full_line_total"],
        rows=rows,
        notes=[
            "paper Figure 4: critical word at 16 cycles, full line at 22",
            "both banks operate concurrently: the second read overlaps the first",
        ],
    )

"""SMT sweep: the same four hardware threads on fewer, wider cores.

The paper's general VPM case (Section 1.1) has multi-threaded
processors with shared L1 caches.  This sweep runs an identical
4-thread workload as 4x1 (the paper's evaluation shape), 2x2, and 1x4
SMT configurations under VPC arbitration with equal shares: the L2-side
QoS machinery is configuration-blind (every context is just a thread to
the cache), while core-side sharing (issue bandwidth, L1 capacity,
MSHR partitions) takes its own toll on per-thread IPC.
"""

from __future__ import annotations

from repro.common.config import VPCAllocation, baseline_config
from repro.experiments.base import ExperimentResult, cycle_budget, register
from repro.experiments.parallel import SimPoint, run_points

WORKLOAD = ("gcc", "gzip", "ammp", "twolf")

SMT_DEGREES = (1, 2, 4)


@register("sweep-smt")
def run(fast: bool = False) -> ExperimentResult:
    warmup, measure = cycle_budget(fast, warmup=30_000, measure=20_000)
    config = baseline_config(n_threads=4, arbiter="vpc",
                             vpc=VPCAllocation.equal(4))
    traces = tuple(("spec", name) for name in WORKLOAD)
    points = [
        SimPoint(config=config, traces=traces, warmup=warmup,
                 measure=measure, smt_degree=smt_degree)
        for smt_degree in SMT_DEGREES
    ]
    rows = []
    for smt_degree, result in zip(SMT_DEGREES, run_points(points)):
        cores = 4 // smt_degree
        rows.append((
            f"{cores}core x {smt_degree}way",
            sum(result.ipcs),
            min(result.ipcs),
            result.utilizations["data"],
        ))
    return ExperimentResult(
        exp_id="sweep-smt",
        title="Same 4 threads as 4x1 / 2x2 / 1x4 SMT under an L2 VPC",
        headers=["topology", "aggregate_ipc", "min_thread_ipc", "data_util"],
        rows=rows,
        notes=[
            "the cache-side VPC guarantees are topology-blind; aggregate "
            "IPC falls with SMT consolidation because issue bandwidth and "
            "the L1/MSHRs are shared inside each core",
        ],
    )

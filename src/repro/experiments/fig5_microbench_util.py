"""Figure 5: microbenchmark L2 cache utilization vs. bank count.

Runs each microbenchmark alone on 2/4/8/16-bank configurations and
reports tag-array, data-array, and data-bus utilization.  Paper shape:
Loads fully utilizes 2 banks and ~80 % of 4; Stores keeps the data
array busy out to 8 banks; for Loads, data-bus and data-array
utilizations match (the design is balanced).
"""

from __future__ import annotations

from repro.common.config import VPCAllocation, baseline_config
from repro.experiments.base import ExperimentResult, register
from repro.experiments.parallel import SimPoint, run_points
from repro.workloads.microbench import MICROBENCHMARKS

BANK_COUNTS = (2, 4, 8, 16)


@register("fig5")
def run(fast: bool = False) -> ExperimentResult:
    # The 32KB arrays only become L2-resident after a DRAM-bandwidth-bound
    # first pass, so even fast mode needs a real warmup.
    warmup, measure = (25_000, 8_000) if fast else (45_000, 30_000)
    bank_counts = (2, 4) if fast else BANK_COUNTS
    labels = []
    points = []
    for name in MICROBENCHMARKS:
        for banks in bank_counts:
            config = baseline_config(
                n_threads=1, banks=banks, arbiter="row-fcfs",
                vpc=VPCAllocation([1.0], [1.0]),
            )
            labels.append(f"{name} {banks}B")
            points.append(SimPoint(
                config=config, traces=(("micro", name),),
                warmup=warmup, measure=measure,
            ))
    rows = []
    for label, result in zip(labels, run_points(points)):
        rows.append((
            label,
            result.utilizations["data"],
            result.utilizations["bus"],
            result.utilizations["tag"],
            result.ipcs[0],
        ))
    return ExperimentResult(
        exp_id="fig5",
        title="L2 cache utilization of the microbenchmarks vs. bank count",
        headers=["config", "data_array", "data_bus", "tag_array", "ipc"],
        rows=rows,
        notes=[
            "paper: Loads saturates 2 banks (~80% at 4); Stores saturates "
            "the data array out to 8 banks; Loads data bus == data array",
        ],
    )

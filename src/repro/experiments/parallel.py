"""Parallel experiment execution and the on-disk target-IPC cache.

Every figure/sweep is a collection of *independent* simulation points
(separate :class:`~repro.system.cmp.CMPSystem` instances, no shared
state), so they parallelize trivially across processes.  A point is
described by a :class:`SimPoint` — a frozen, picklable value object —
and realized by the module-level :func:`run_point` so worker processes
can unpickle and execute it.

Two mechanisms, both off by default and switched from the CLI
(``--jobs N`` / ``--no-cache`` on ``python -m repro.experiments``):

* **fan-out** — :func:`run_points` dispatches points to a
  ``ProcessPoolExecutor`` when more than one job is configured;
* **target cache** — points flagged ``cacheable`` (the
  ``private_equivalent`` target-IPC runs that fig8/fig9/fig10 and the
  ablations re-run with identical parameters every invocation) are
  memoized on disk, keyed by a content hash of the full point
  description.  The cache lives at ``$REPRO_CACHE_DIR`` (or
  ``~/.cache/repro-vpc``); bump :data:`CACHE_VERSION` in any PR that
  changes simulated behavior.

Determinism makes both safe: traces are seeded PRNG streams, so a point
simulates bit-identically in any process on any host, and a cached
result is exactly what a fresh run would produce.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.system.cmp import CMPSystem
from repro.system.simulator import SimulationResult, run_simulation
from repro.telemetry.events import CAT_RUN, PH_COMPLETE, PH_INSTANT, TraceEvent

# Bump whenever a change alters simulation results; stale entries are
# then simply never looked up again.
CACHE_VERSION = 1

# Module-level execution policy, set once from the CLI via configure().
_jobs = 1
_cache_enabled = True
# Optional observers (repro.telemetry): a ProgressReporter that gets a
# callback per completed point, and a TelemetryBus that receives
# wall-clock orchestration events.  Unlike jobs/cache these are RESET by
# every configure() call, so test fixtures and benchmark setup that pin
# the execution policy also restore "no observers".
_progress = None
_telemetry = None
# Metrics collection window in cycles (None = off).  When set, every
# point runs with a MetricsCollector + InterferenceAttributor attached
# (built inside the worker process — the window travels to workers as an
# explicit run_point argument, never as process-global state) and the
# snapshot rides back on SimulationResult.metrics.
_metrics_window: Optional[int] = None
# Live observability feed (repro.telemetry.server.LiveRun) for --serve:
# workers stream per-window snapshots/heartbeats/QoS violations to it
# mid-point.  Requires metrics collection; reset by every configure().
_live = None
# Cycle accounting (repro.telemetry.cycles): when True every point runs
# with a CycleAccounting attached and the CPI-stack snapshot rides back
# on SimulationResult.cpi_stacks (and, when metrics are also on, inside
# the metrics snapshot as "cpi_stacks" so aggregates carry it).  Reset
# by every configure() like the observers.
_cpi_stacks = False
# Resilience policy (repro.resilience.fleet.ResilienceConfig): when set,
# run_points() routes through the fault-tolerant fleet — journaled run
# directory, per-point checkpoints, timeouts/retries.  Reset by every
# configure() like the observers; None keeps the fast pool path with
# zero resilience overhead.
_resilience = None
# Simulation kernel every point runs under ("cycle" | "event" |
# "batch").  Sticky like jobs/cache: an execution policy, not an
# observer.  All kernels are bit-identical (tests/test_kernel_
# equivalence.py), so the choice affects wall time only — which is also
# why kernel is deliberately NOT part of SimPoint/cache_key: a cached
# result is valid under any kernel.
_kernel = "event"
# Lane-parallel lockstep driver width (see run_points): K > 1 advances
# up to K points in one process, interleaved chunk-by-chunk in
# simulated-cycle order.  Sticky like jobs.
_lanes = 1
# Host-time orchestration span tracer (repro.telemetry.spans.SpanTracer)
# for --spans: run_points opens batch/point spans on it and propagates a
# SpanContext to workers when a live feed exists so their spans travel
# home over the same wire.  Reset by every configure() like the
# observers; None keeps every producer at a single is-not-None test.
_spans = None
# Request-scope tracing (repro.telemetry.requests): when True every
# single-threaded-per-core point runs with a RequestTracer attached and
# the per-thread tail-latency document rides back on
# SimulationResult.requests (and, when metrics are also on, inside the
# metrics snapshot as "requests" so aggregates and report cards carry
# it).  _slo is the tuple of SLORule declarations evaluated into each
# document.  Reset by every configure() like the observers.
_requests = False
_slo: Tuple = ()
# Policy-family override (--policy on the experiments runner): remaps
# every multi-thread point's arbiter/capacity/controller before it runs
# ("fcfs" | "vpc" | "lfoc"; None = leave points as authored).  Solo
# (1-thread) points — the private-equivalent targets — are never
# remapped.  Reset by every configure() like the observers.
_policy: Optional[str] = None
# QoS controller override (--controller): attach this repro.qos
# controller to every multi-thread point, with _epoch as its epoch
# length (None = the points' own epoch_cycles).  Reset like _policy.
_controller: Optional[str] = None
_epoch: Optional[int] = None

#: Policy-family presets shared with the CLIs: arbiter, capacity
#: policy, and controller implied by each ``--policy`` name.
POLICIES = ("fcfs", "vpc", "lfoc")

#: hits/misses observability (tests assert on this; reset via configure).
cache_stats: Dict[str, int] = {"hits": 0, "misses": 0}

#: Metrics snapshots of completed points, in point order, accumulated
#: across run_points() batches; the experiment runner drains this per
#: experiment via drain_metrics().  Empty unless metrics are configured.
metrics_log: List[Dict] = []


def configure(
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    progress=None,
    telemetry=None,
    metrics: Optional[int] = None,
    live=None,
    resilience=None,
    kernel: Optional[str] = None,
    lanes: Optional[int] = None,
    cpi_stacks: bool = False,
    spans=None,
    requests: bool = False,
    slo: Sequence = (),
    policy: Optional[str] = None,
    controller: Optional[str] = None,
    epoch: Optional[int] = None,
) -> None:
    """Set the process-wide execution policy (``jobs=0`` → all CPUs).

    ``metrics`` is a cycle-window size enabling per-point metrics
    collection; like the observers it is reset by every call.  ``live``
    is a :class:`repro.telemetry.server.LiveRun` feed for the ``--serve``
    observability plane — it needs window snapshots to stream, so it
    requires ``metrics``.  ``resilience`` is a
    :class:`repro.resilience.fleet.ResilienceConfig` routing execution
    through the journaled, checkpointing, fault-tolerant fleet.

    ``cpi_stacks`` enables per-thread cycle accounting
    (:mod:`repro.telemetry.cycles`) on every point; like the observers
    it is reset by every call.

    ``spans`` is a :class:`repro.telemetry.spans.SpanTracer` for host-
    time orchestration tracing (``--spans``): batches and points get
    wall-clock spans, cache hits/misses get instants, and — when a live
    feed is also configured — workers are handed a
    :class:`~repro.telemetry.spans.SpanContext` so their spans stream
    home over the feed channel.  Reset by every call like the observers.

    ``requests`` enables per-request latency tracing
    (:mod:`repro.telemetry.requests`) on every point whose cores run one
    hardware thread each; ``slo`` is a sequence of
    :class:`~repro.telemetry.requests.SLORule` evaluated into each
    point's document.  Like the observers both are reset by every call.

    ``kernel`` selects the simulation kernel every point runs under
    (``cycle``/``event``/``batch`` — bit-identical, wall time only).
    ``lanes`` enables the in-process lockstep driver: K points advance
    chunk-by-chunk in simulated-cycle order in this process.  Lanes are
    an alternative to process fan-out and to the streaming/resilience
    planes: combining ``lanes > 1`` with ``jobs > 1``, a live feed, or
    a resilience policy is an error.

    ``policy`` ("fcfs"/"vpc"/"lfoc") remaps every multi-thread point's
    arbiter, capacity policy, and QoS controller to one policy family
    before it runs; ``controller`` ("lfoc"/"fairness") attaches a
    :mod:`repro.qos` controller to every multi-thread point, and
    ``epoch`` overrides the controller epoch length.  Solo points (the
    private-equivalent targets) are never remapped.  Controllers drive
    the measurement loop's epoch chunking, which the lockstep lane
    driver does not replicate — combining either with ``lanes > 1`` is
    an error.  All three reset on every call like the observers.
    """
    global _jobs, _cache_enabled, _progress, _telemetry, _metrics_window
    global _live, _resilience, _kernel, _lanes, _cpi_stacks, _spans
    global _requests, _slo, _policy, _controller, _epoch
    if jobs is not None:
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        _jobs = jobs if jobs > 0 else (os.cpu_count() or 1)
    if cache is not None:
        _cache_enabled = cache
    if kernel is not None:
        from repro.system.kernel import KERNELS
        if kernel not in KERNELS:
            raise ValueError(f"unknown simulation kernel {kernel!r}; "
                             f"choose from {sorted(KERNELS)}")
        _kernel = kernel
    if lanes is not None:
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        _lanes = lanes
    if _lanes > 1:
        if _jobs > 1:
            raise ValueError("lanes and jobs are alternative parallelism "
                             "modes; configure one of them")
        if live is not None:
            raise ValueError("the lockstep lane driver cannot stream a "
                             "live feed; drop lanes or --serve")
        if resilience is not None:
            raise ValueError("the lockstep lane driver does not journal "
                             "checkpoints; drop lanes or the run dir")
    if metrics is not None and metrics < 1:
        raise ValueError(f"metrics window must be >= 1 cycle, got {metrics}")
    if live is not None and metrics is None:
        raise ValueError("live streaming requires a metrics window")
    if slo and not requests:
        raise ValueError("SLO rules require request tracing")
    if requests and resilience is not None:
        raise ValueError("the resilient fleet does not carry request "
                         "traces across checkpoints; drop --requests or "
                         "the run dir")
    if policy is not None and policy not in POLICIES:
        raise ValueError(f"unknown policy family {policy!r}; "
                         f"choose from {POLICIES}")
    if controller is not None:
        from repro.qos import CONTROLLERS
        if controller not in CONTROLLERS:
            raise ValueError(f"unknown QoS controller {controller!r}; "
                             f"choose from {CONTROLLERS}")
        if policy == "fcfs":
            raise ValueError("a QoS controller needs VPC share registers; "
                             "it cannot ride the fcfs policy family")
    if epoch is not None and epoch < 1:
        raise ValueError(f"controller epoch must be >= 1 cycle, got {epoch}")
    if _lanes > 1 and (controller is not None or policy == "lfoc"):
        raise ValueError("the lockstep lane driver does not fire QoS "
                         "controller epochs; drop lanes or the controller")
    _progress = progress
    _telemetry = telemetry
    _metrics_window = metrics
    _live = live
    _resilience = resilience
    _cpi_stacks = cpi_stacks
    _spans = spans
    _requests = requests
    _slo = tuple(slo)
    _policy = policy
    _controller = controller
    _epoch = epoch
    cache_stats["hits"] = 0
    cache_stats["misses"] = 0
    metrics_log.clear()


def configured_live():
    """The LiveRun feed configured for this process, if any."""
    return _live


def configured_resilience():
    """The ResilienceConfig configured for this process, if any."""
    return _resilience


def configured_spans():
    """The host-time SpanTracer configured for this process, if any."""
    return _spans


def drain_metrics() -> List[Dict]:
    """Hand over (and clear) the accumulated per-point snapshots."""
    drained = list(metrics_log)
    metrics_log.clear()
    return drained


def cache_summary() -> Optional[str]:
    """One-line hit/miss summary of the run so far (None if untouched)."""
    if not (cache_stats["hits"] or cache_stats["misses"]):
        return None
    return (f"target cache: {cache_stats['hits']} hits, "
            f"{cache_stats['misses']} misses ({cache_dir()})")


def configured_jobs() -> int:
    return _jobs


def configured_kernel() -> str:
    """The simulation kernel points run under ("cycle"/"event"/"batch")."""
    return _kernel


def configured_lanes() -> int:
    return _lanes


def configured_cpi_stacks() -> bool:
    """Whether per-point cycle accounting is enabled for this process."""
    return _cpi_stacks


def configured_requests() -> bool:
    """Whether per-point request tracing is enabled for this process."""
    return _requests


def configured_policy() -> Optional[str]:
    """The policy-family override for this process, if any."""
    return _policy


def configured_controller() -> Optional[str]:
    """The QoS-controller override for this process, if any."""
    return _controller


def apply_policy(point: "SimPoint") -> "SimPoint":
    """Remap one point to the configured policy family / controller.

    Solo (1-thread) points pass through untouched: they are the
    private-equivalent targets every policy normalizes against, and
    remapping them would also orphan their cache entries.  Multi-thread
    points get their arbiter, capacity policy, and controller rewritten
    — the rewritten point is what runs, caches, and pickles, so worker
    processes need no knowledge of the override.
    """
    if (_policy is None and _controller is None) \
            or point.config.n_threads == 1:
        return point
    updates: Dict = {}
    if _policy == "fcfs":
        updates["config"] = replace(point.config, arbiter="fcfs")
        updates["capacity_policy"] = "lru"
        updates["controller"] = None
    elif _policy == "vpc":
        updates["config"] = replace(point.config, arbiter="vpc")
        updates["capacity_policy"] = "vpc"
        updates["controller"] = None
    elif _policy == "lfoc":
        updates["config"] = replace(point.config, arbiter="vpc")
        updates["capacity_policy"] = "vpc"
        updates["controller"] = "lfoc"
    if _controller is not None:
        updates["config"] = replace(
            updates.get("config", point.config), arbiter="vpc")
        updates["capacity_policy"] = "vpc"
        updates["controller"] = _controller
    if _epoch is not None and (
            updates.get("controller") or point.controller):
        updates["epoch_cycles"] = _epoch
    return replace(point, **updates) if updates else point


@dataclass(frozen=True)
class SimPoint:
    """One simulation: a system configuration plus seeded trace specs.

    ``traces`` holds one spec per hardware thread:

    * ``("loads",)`` / ``("stores",)`` — the microbenchmarks;
    * ``("micro", name)`` — any entry of ``MICROBENCHMARKS``;
    * ``("spec", name)`` — a SPEC stand-in profile;
    * ``("synthetic", profile)`` — an explicit ``WorkloadProfile``;
    * ``("phased", name)`` — a named phase-changing schedule;
    * ``("phased-inline", text)`` — an inline phased schedule.

    Thread ids are positional.  Everything here is a frozen dataclass or
    a primitive, so a point pickles to workers and ``repr`` is a stable
    content key.
    """

    config: SystemConfig
    traces: Tuple[Tuple, ...]
    warmup: int
    measure: int
    capacity_policy: str = "vpc"
    intra_thread_row: bool = True
    vpc_selection: str = "finish"
    smt_degree: int = 1
    # Only target-IPC points (re-run with identical parameters on every
    # experiment invocation) should set this; workload points are cheap
    # relative to their disk-churn and cache-invalidation risk.
    cacheable: bool = False
    # Dynamic QoS control plane (repro.qos): a controller name
    # ("lfoc"/"fairness") attached to the point's system, its epoch
    # length, and optional solo-baseline IPCs handed to the controller
    # as slowdown targets.  Part of the frozen value object, so it is
    # in the cache key and travels to workers with the point.
    controller: Optional[str] = None
    epoch_cycles: int = 5_000
    controller_targets: Optional[Tuple[float, ...]] = None


def _build_trace(spec: Tuple, thread_id: int):
    kind = spec[0]
    if kind == "loads":
        from repro.workloads.microbench import loads_trace
        return loads_trace(thread_id)
    if kind == "stores":
        from repro.workloads.microbench import stores_trace
        return stores_trace(thread_id)
    if kind == "micro":
        from repro.workloads.microbench import MICROBENCHMARKS
        return MICROBENCHMARKS[spec[1]](thread_id)
    if kind == "spec":
        from repro.workloads.profiles import spec_trace
        return spec_trace(spec[1], thread_id)
    if kind == "synthetic":
        from repro.workloads.synthetic import synthetic_trace
        return synthetic_trace(spec[1], thread_id)
    if kind == "phased":
        from repro.workloads.profiles import phased_profile_trace
        return phased_profile_trace(spec[1], thread_id)
    if kind == "phased-inline":
        from repro.workloads.phased import parse_phased, phased_trace
        return phased_trace(parse_phased(spec[1]), thread_id)
    raise ValueError(f"unknown trace spec {spec!r}")


def _point_system(point: SimPoint, traces, kernel: Optional[str]):
    """The CMPSystem for a point — shared by run_point and the lockstep
    lane driver so both construct bit-identical simulations."""
    kwargs = {}
    if kernel is not None:
        kwargs["kernel"] = kernel
    return CMPSystem(
        point.config,
        traces,
        capacity_policy=point.capacity_policy,
        intra_thread_row=point.intra_thread_row,
        vpc_selection=point.vpc_selection,
        smt_degree=point.smt_degree,
        **kwargs,
    )


def _point_controller(system, point: SimPoint) -> None:
    """Attach the point's QoS controller, if any (after the observers,
    so the controller's private collector lands on the final bus)."""
    if point.controller is None:
        return
    from repro.qos import make_controller
    system.attach_qos_controller(make_controller(
        point.controller,
        point.config.n_threads,
        epoch_cycles=point.epoch_cycles,
        baseline_ipcs=point.controller_targets,
    ))


def _point_observers(system, point: SimPoint, metrics_window: Optional[int]):
    """Attach the standard per-point observers (collector + attributor)
    on a private bus; returns ``(metrics, attributor)`` (both None when
    metrics are off)."""
    if metrics_window is None:
        return None, None
    from repro.telemetry import (
        InterferenceAttributor,
        MetricsCollector,
        TelemetryBus,
    )
    bus = system.attach_telemetry(TelemetryBus())
    metrics = bus.attach(MetricsCollector(
        point.config.n_threads, window=metrics_window))
    attributor = bus.attach(InterferenceAttributor(
        point.config.n_threads))
    return metrics, attributor


def run_point(
    point: SimPoint,
    metrics_window: Optional[int] = None,
    feed=None,
    index: Optional[int] = None,
    checkpoint=None,
    resumable: bool = False,
    kernel: Optional[str] = None,
    cpi_stacks: bool = False,
    span_ctx=None,
    requests: bool = False,
    slo_rules: Sequence = (),
) -> SimulationResult:
    """Simulate one point from scratch (no cache involvement).

    With ``metrics_window`` set the point runs fully observed — metrics
    collector plus interference attributor on a private bus — and the
    combined snapshot returns on ``SimulationResult.metrics`` (a plain
    dict, so it pickles home from worker processes).

    ``feed`` is a queue-like live-observability sink (``put(tuple)``):
    when given (requires ``metrics_window``), the point streams one
    snapshot per measurement window plus QoS-violation instants while
    it simulates, tagged with ``index`` (the point's global number in
    its run) and this worker's pid.  Observation only — the simulated
    result is bit-identical with or without a feed.

    ``kernel`` picks the simulation kernel ("cycle"/"event"/"batch";
    ``None`` keeps the system default).  Kernels are bit-identical, so
    it travels to worker processes as an explicit argument but never
    into the point's cache key.

    ``cpi_stacks`` attaches per-thread cycle accounting; the stack
    document returns on ``SimulationResult.cpi_stacks`` and — when
    metrics are also collected — is mirrored into the metrics snapshot
    as ``"cpi_stacks"`` so experiment aggregates carry it per point.

    ``span_ctx`` is a :class:`repro.telemetry.spans.SpanContext`
    (requires ``feed``): the point's simulation is wrapped in a worker-
    side host-time span that streams home as a ``("span", ...)`` tuple,
    parented under the parent-side span that scheduled this point.

    ``requests`` attaches per-request latency tracing (skipped for SMT
    points — journeys assume one thread per core); the tail-latency
    document returns on ``SimulationResult.requests`` and — when
    metrics are also collected — is mirrored into the metrics snapshot
    as ``"requests"``.  ``slo_rules`` are evaluated into the document.
    """
    if feed is not None and metrics_window is None:
        raise ValueError("a live feed requires a metrics window")
    if resumable:
        # Checkpointable runs wrap each trace in a picklable cursor
        # (spec + items consumed); plain runs keep the raw generators —
        # the zero-overhead path when resilience is off.
        from repro.resilience.snapshot import ResumableTrace
        traces = [
            ResumableTrace(spec, tid)
            for tid, spec in enumerate(point.traces)
        ]
    else:
        traces = [
            _build_trace(spec, tid) for tid, spec in enumerate(point.traces)
        ]
    system = _point_system(point, traces, kernel)
    if cpi_stacks:
        system.attach_cycle_accounting()
    if requests and point.smt_degree == 1:
        system.attach_request_tracing(slo_rules=slo_rules)
    metrics, attributor = _point_observers(system, point, metrics_window)
    _point_controller(system, point)
    on_window = None
    monitor = None
    if feed is not None:
        worker = os.getpid()
        feed.put(("start", index, worker))
        if point.config.arbiter == "vpc":
            from repro.core.monitor import QoSMonitor
            monitor = QoSMonitor(system, window=metrics_window)
        violations_sent = 0

        def on_window(cycle: int) -> None:
            nonlocal violations_sent
            snapshot = metrics.snapshot()
            snapshot["attribution"] = attributor.snapshot()
            snapshot["arbiter"] = point.config.arbiter
            if system.cycle_accounting is not None:
                snapshot["cpi_stacks"] = system.cycle_accounting.snapshot(
                    cycle)
            if system.request_tracer is not None:
                snapshot["requests"] = system.request_tracer.document(cycle)
            feed.put(("window", index, worker, cycle, snapshot))
            if monitor is not None:
                # Window boundaries close lazily on events; force the
                # elapsed ones shut so fresh violations surface now.
                monitor.finish(cycle)
                for violation in monitor.violations[violations_sent:]:
                    feed.put(("violation", index, worker,
                              asdict(violation)))
                violations_sent = len(monitor.violations)

    worker_span = worker_tracer = None
    if span_ctx is not None and feed is not None:
        from repro.telemetry.spans import TRACK_WORKER, SpanTracer
        worker_tracer = SpanTracer(feed=feed, index=index, context=span_ctx)
        worker_span = worker_tracer.begin(
            f"simulate.point{index}", TRACK_WORKER,
            warmup=point.warmup, measure=point.measure,
        )
    try:
        result = run_simulation(
            system, warmup=point.warmup, measure=point.measure,
            metrics=metrics, on_window=on_window, checkpoint=checkpoint,
        )
    except BaseException as exc:
        if worker_tracer is not None:
            worker_tracer.end(worker_span, error=type(exc).__name__)
        raise
    if worker_tracer is not None:
        worker_tracer.end(worker_span, cycles=system.cycle)
    if attributor is not None:
        attributor.finish(system.cycle)
        result.metrics["attribution"] = attributor.snapshot()
        result.metrics["arbiter"] = point.config.arbiter
        if result.cpi_stacks is not None:
            result.metrics["cpi_stacks"] = result.cpi_stacks
        if result.requests is not None:
            result.metrics["requests"] = result.requests
    if monitor is not None:
        monitor.finish(system.cycle)
        for violation in monitor.violations[violations_sent:]:
            feed.put(("violation", index, os.getpid(), asdict(violation)))
    return result


# ---------------------------------------------------------------------- #
# Lockstep lane driver.
# ---------------------------------------------------------------------- #

# Lockstep granularity when no metrics window dictates the cadence.
# Chunked system.run() calls are bit-identical to one call (the
# kernels' exactness contract), so the value affects interleaving
# fairness and nothing else.
_LANE_CHUNK = 4096


class _Lane:
    """One in-flight point's progress through the simulation protocol."""

    __slots__ = ("index", "point", "system", "metrics", "attributor",
                 "warm_left", "state", "started_us")


def _run_lockstep(points, todo, lanes, kernel, metrics_window,
                  finish, wall_us, cpi_stacks: bool = False,
                  requests: bool = False, slo_rules: Sequence = ()) -> None:
    """Advance up to ``lanes`` points chunk-by-chunk in one process.

    Each lane replicates :func:`repro.system.simulator.run_simulation`'s
    protocol exactly — warm up, capture a :class:`MeasureState`, measure
    in metrics-window chunks (or :data:`_LANE_CHUNK` when unobserved),
    finalize from the captured snapshots.  The only difference from
    ``run_point`` is that ``system.run()`` calls from different lanes
    interleave; systems share no state, and chunked runs are
    bit-identical to whole runs, so every lane's result is bit-identical
    to its serial ``run_point``.

    Scheduling state is one flat :class:`repro.system.soa.WakeTable` of
    per-lane simulated cycles: the least-advanced lane (``argmin``) runs
    next, which keeps all K resident systems within one chunk of each
    other — bounded memory skew and evenly-spread completion.  A lane
    whose point completes reloads from the remaining queue; drained
    lanes park at ``NEVER``.
    """
    from repro.common.latch import NEVER
    from repro.system.simulator import MeasureState, _finalize
    from repro.system.soa import WakeTable

    queue = list(todo)
    width = min(lanes, len(queue))
    progress = WakeTable(width)
    slots: List[Optional[_Lane]] = [None] * width

    def begin_measure(lane: _Lane) -> None:
        system = lane.system
        point = lane.point
        n_threads = point.config.n_threads
        lane.state = MeasureState(
            warmup=point.warmup,
            measure=point.measure,
            remaining=point.measure,
            dispatched_before=[
                system.thread_dispatched(tid) for tid in range(n_threads)
            ],
            meter_snaps=[bank.utilization_snapshot()
                         for bank in system.banks],
            counter_snaps=[bank.counters.snapshot()
                           for bank in system.banks],
        )
        if system.cycle_accounting is not None:
            # Mirrors run_simulation's post-warmup rebase so a lane's
            # stacks cover exactly the measurement interval.
            system.cycle_accounting.rebase(system.cycle)
        if system.request_tracer is not None:
            # Same rebase for request tracing: warmup retirements drop,
            # in-flight journeys carry over measurement-relative.
            system.request_tracer.rebase(system.cycle)
        if lane.metrics is not None:
            lane.metrics.sample(system)

    def load(slot: int) -> None:
        if not queue:
            slots[slot] = None
            progress.data[slot] = NEVER
            return
        index = queue.pop(0)
        point = points[index]
        if point.warmup < 0 or point.measure <= 0:
            raise ValueError("warmup must be >= 0 and measure > 0")
        if point.controller is not None:
            raise ValueError(
                "the lockstep lane driver chunks measurement itself and "
                "does not fire QoS controller epochs; run controlled "
                "points without lanes"
            )
        lane = _Lane()
        lane.index = index
        lane.point = point
        lane.started_us = wall_us()
        traces = [
            _build_trace(spec, tid) for tid, spec in enumerate(point.traces)
        ]
        lane.system = _point_system(point, traces, kernel)
        if cpi_stacks:
            lane.system.attach_cycle_accounting()
        if requests and point.smt_degree == 1:
            lane.system.attach_request_tracing(slo_rules=slo_rules)
        lane.metrics, lane.attributor = _point_observers(
            lane.system, point, metrics_window)
        lane.warm_left = point.warmup
        lane.state = None
        slots[slot] = lane
        progress.data[slot] = 0
        if lane.warm_left == 0:
            begin_measure(lane)

    for slot in range(width):
        load(slot)

    while True:
        slot = progress.argmin()
        if progress.data[slot] >= NEVER:
            return  # every lane drained
        lane = slots[slot]
        system = lane.system
        if lane.warm_left > 0:
            chunk = min(lane.warm_left, _LANE_CHUNK)
            system.run(chunk)
            lane.warm_left -= chunk
            if lane.warm_left == 0:
                begin_measure(lane)
            progress.data[slot] = system.cycle
            continue
        state = lane.state
        window = (lane.metrics.window if lane.metrics is not None
                  else _LANE_CHUNK)
        chunk = min(state.remaining, window)
        system.run(chunk)
        state.remaining -= chunk
        if lane.metrics is not None:
            lane.metrics.sample(system)
        if state.remaining > 0:
            progress.data[slot] = system.cycle
            continue
        if lane.metrics is not None:
            lane.metrics.finish(system.cycle)
        result = _finalize(system, state, lane.metrics)
        if lane.attributor is not None:
            lane.attributor.finish(system.cycle)
            result.metrics["attribution"] = lane.attributor.snapshot()
            result.metrics["arbiter"] = lane.point.config.arbiter
            if result.cpi_stacks is not None:
                result.metrics["cpi_stacks"] = result.cpi_stacks
            if result.requests is not None:
                result.metrics["requests"] = result.requests
        finish(lane.index, result, lane.started_us)
        load(slot)


# ---------------------------------------------------------------------- #
# Content-addressed result cache.
# ---------------------------------------------------------------------- #

def cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path.home() / ".cache" / "repro-vpc"


def cache_key(point: SimPoint) -> str:
    """Content hash of the full point description.

    Frozen-dataclass reprs include every field recursively, so any
    config/trace/interval difference changes the key.
    """
    text = f"v{CACHE_VERSION}:{point!r}"
    return hashlib.sha256(text.encode()).hexdigest()


def _cache_load(point: SimPoint) -> Optional[SimulationResult]:
    path = cache_dir() / f"{cache_key(point)}.json"
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        return None
    except (OSError, ValueError, EOFError, pickle.UnpicklingError):
        # Truncated or otherwise corrupt entry (a crashed writer, a torn
        # disk): treat as a miss and evict it so it cannot shadow the
        # fresh result we are about to store.
        _cache_evict(path)
        return None
    try:
        return SimulationResult(**payload)
    except TypeError:
        _cache_evict(path)
        return None  # field set drifted without a CACHE_VERSION bump


def _cache_evict(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass  # cache hygiene is best-effort; never fail the run for it


def _cache_store(point: SimPoint, result: SimulationResult) -> None:
    directory = cache_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{cache_key(point)}.json"
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(asdict(result)))
        tmp.replace(path)  # atomic: concurrent writers race benignly
    except OSError:
        pass  # cache is an optimization; never fail the run for it


# ---------------------------------------------------------------------- #
# Fan-out.
# ---------------------------------------------------------------------- #

def run_points(points: Sequence[SimPoint]) -> List[SimulationResult]:
    """Run every point, in order, honoring the configured jobs/cache.

    Cached results are returned without simulating; the remainder run on
    a process pool when more than one job is configured (and there is
    more than one point to run), inline otherwise.  Completions are
    consumed as they land (not in submission order) so the configured
    progress reporter ticks live; result order is positional and
    unaffected.  Orchestration telemetry (``CAT_RUN``) is wall-clock
    microseconds from batch start — a different time base from the
    simulation's cycle-stamped events, kept apart by track name.

    With a resilience policy configured the batch instead routes through
    the journaled fleet (``repro.resilience.fleet``): completed points
    replayed from the run directory, survivors checkpointed, failures
    retried with backoff.
    """
    if _policy is not None or _controller is not None:
        points = [apply_policy(point) for point in points]
    if _resilience is not None:
        from repro.resilience import fleet
        results_r = fleet.run_points_resilient(
            points, _resilience, jobs=_jobs,
            metrics_window=_metrics_window, progress=_progress, live=_live,
            kernel=_kernel, cpi_stacks=_cpi_stacks, spans=_spans,
        )
        if _metrics_window is not None:
            metrics_log.extend(
                result.metrics for result in results_r
                if result is not None and result.metrics is not None
            )
        return results_r
    results: List[Optional[SimulationResult]] = [None] * len(points)
    todo: List[int] = []
    progress = _progress
    telemetry = _telemetry
    metrics_window = _metrics_window
    live = _live
    base = live.begin_batch(len(points)) if live is not None else 0
    cpi_stacks = _cpi_stacks
    requests = _requests
    slo = _slo
    spans = _spans
    batch_span = None
    open_points: Dict[int, object] = {}
    if spans is not None:
        from repro.telemetry.spans import TRACK_SCHED
        batch_span = spans.begin("batch", points=len(points))
    # Metrics runs bypass the cache entirely: cached results carry no
    # snapshots, and polluting the cache with observed runs would make
    # hit results depend on observability settings.  Cycle-accounted
    # and request-traced runs bypass it for the same reason (stacks and
    # tail-latency documents are observability).
    use_cache = (_cache_enabled and metrics_window is None
                 and not cpi_stacks and not requests)
    batch_t0 = time.monotonic()

    def wall_us() -> int:
        return int((time.monotonic() - batch_t0) * 1e6)

    if progress is not None:
        progress.begin(len(points))
    for index, point in enumerate(points):
        if use_cache and point.cacheable:
            cached = _cache_load(point)
            if cached is not None:
                cache_stats["hits"] += 1
                results[index] = cached
                if spans is not None:
                    spans.instant("cache-hit", TRACK_SCHED,
                                  parent=batch_span, point=index)
                if telemetry is not None:
                    telemetry.emit(TraceEvent(
                        ts=wall_us(), phase=PH_INSTANT, category=CAT_RUN,
                        name="cache-hit", track="run.points",
                        args={"point": index},
                    ))
                if progress is not None:
                    progress.point_done(cached=True)
                continue
            cache_stats["misses"] += 1
            if spans is not None:
                spans.instant("cache-miss", TRACK_SCHED,
                              parent=batch_span, point=index)
        todo.append(index)

    def finish(index: int, result: SimulationResult, started_us: int) -> None:
        results[index] = result
        if use_cache and points[index].cacheable:
            _cache_store(points[index], result)
        if telemetry is not None:
            telemetry.emit(TraceEvent(
                ts=started_us, phase=PH_COMPLETE, category=CAT_RUN,
                name=f"point{index}", track="run.points",
                dur=max(1, wall_us() - started_us),
                args={"point": index},
            ))
        if live is not None:
            live.point_done(base + index, result.metrics)
        if spans is not None:
            sched_span = open_points.pop(index, None)
            if sched_span is not None:
                spans.end(sched_span, cycles=result.cycles)
        if progress is not None:
            progress.point_done(cached=False)

    if len(todo) > 1 and _jobs > 1:
        feed = drainer = stop_draining = manager = None
        if live is not None:
            # Workers stream through a managed queue (picklable proxy);
            # this drainer translates the wire tuples into LiveRun calls
            # with the parent's clock and polls for stale heartbeats.
            import multiprocessing
            manager = multiprocessing.Manager()
            feed = manager.Queue()
            stop_draining = threading.Event()

            def drain() -> None:
                import queue as _queue
                while True:
                    try:
                        live.put(feed.get(timeout=0.2))
                    except _queue.Empty:
                        if stop_draining.is_set():
                            return
                        live.check_stale()

            drainer = threading.Thread(target=drain, name="repro-live-drain",
                                       daemon=True)
            drainer.start()
        try:
            pool = ProcessPoolExecutor(max_workers=min(_jobs, len(todo)))
            try:
                pending = {}
                for index in todo:
                    span_ctx = None
                    if spans is not None:
                        open_points[index] = spans.begin(
                            f"point{index}", TRACK_SCHED,
                            parent=batch_span, point=index)
                        if feed is not None:
                            span_ctx = spans.child_context(
                                open_points[index])
                    pending[pool.submit(run_point, points[index],
                                        metrics_window, feed,
                                        base + index,
                                        kernel=_kernel,
                                        cpi_stacks=cpi_stacks,
                                        span_ctx=span_ctx,
                                        requests=requests,
                                        slo_rules=slo)] = (
                        index, wall_us()
                    )
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index, started_us = pending.pop(future)
                        finish(index, future.result(), started_us)
                pool.shutdown()
            except KeyboardInterrupt:
                # Ctrl-C: don't wait for in-flight points (they can be
                # minutes long) — drop the queue and kill the workers so
                # the CLI can report and exit promptly.
                for future in pending:
                    future.cancel()
                for proc in list(getattr(pool, "_processes", {}).values()):
                    proc.terminate()
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        finally:
            if drainer is not None:
                stop_draining.set()
                drainer.join(timeout=10.0)
                manager.shutdown()
    elif _lanes > 1 and len(todo) > 1:
        _run_lockstep(points, todo, _lanes, _kernel, metrics_window,
                      finish, wall_us, cpi_stacks=cpi_stacks,
                      requests=requests, slo_rules=slo)
    else:
        for index in todo:
            span_ctx = None
            if spans is not None:
                open_points[index] = spans.begin(
                    f"point{index}", TRACK_SCHED, parent=batch_span,
                    point=index)
                if live is not None:
                    span_ctx = spans.child_context(open_points[index])
            finish(index, run_point(points[index], metrics_window, live,
                                    base + index, kernel=_kernel,
                                    cpi_stacks=cpi_stacks,
                                    span_ctx=span_ctx,
                                    requests=requests, slo_rules=slo),
                   wall_us())
    if spans is not None:
        spans.end(batch_span)
    if metrics_window is not None:
        metrics_log.extend(
            result.metrics for result in results
            if result is not None and result.metrics is not None
        )
    return results  # type: ignore[return-value]

"""Figure 7: percentage of L2 requests that are writes, and the store
gathering rate, per benchmark.

Paper shape: writes average ~55 % of all L2 requests after gathering;
~80 % of stores gather (no separate L2 access); equake/swim have almost
no L2 writes.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, cycle_budget, register
from repro.experiments.fig6_spec_util import FAST_SUBSET, solo_point
from repro.experiments.parallel import run_points
from repro.workloads.profiles import SPEC_ORDER


@register("fig7")
def run(fast: bool = False) -> ExperimentResult:
    warmup, measure = cycle_budget(fast, warmup=30_000, measure=30_000)
    names = FAST_SUBSET if fast else SPEC_ORDER
    points = [solo_point(name, warmup, measure) for name in names]
    rows = []
    for name, result in zip(names, run_points(points)):
        rows.append((
            name,
            result.write_fraction,
            result.gathering_rate,
            result.l2_reads,
            result.l2_writes,
        ))
    mean_writes = sum(row[1] for row in rows) / len(rows)
    mean_gather = sum(row[2] for row in rows) / len(rows)
    return ExperimentResult(
        exp_id="fig7",
        title="L2 writes (after gathering) and store gathering rate",
        headers=["benchmark", "write_fraction", "gathering_rate",
                 "l2_reads", "l2_writes"],
        rows=rows,
        notes=[
            f"mean write fraction {mean_writes:.2f} (paper: 0.55), "
            f"mean gathering rate {mean_gather:.2f} (paper: 0.80)",
        ],
    )

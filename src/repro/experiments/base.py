"""Experiment infrastructure: result records, table rendering, registry.

Every experiment module exposes ``run(fast: bool = False) ->
ExperimentResult``.  ``fast`` trades fidelity for speed (short warmup,
benchmark subsets) and is what the test suite and pytest-benchmark
harness use; full runs regenerate the numbers recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """A regenerated table/figure: headers + rows, ready to print."""

    exp_id: str
    title: str
    headers: List[str]
    rows: List[Sequence]
    notes: List[str] = field(default_factory=list)
    # Provenance (repro.telemetry.RunManifest), attached by the runner.
    manifest: Optional[object] = None
    # Aggregated per-point metrics (repro.telemetry.metrics), attached by
    # the runner when metrics collection is enabled.
    metrics: Optional[Dict] = None
    # Machine-readable figure document (schema-tagged, validated by
    # repro.telemetry.validate) for experiments that produce one; the
    # runner writes it next to the other artifacts under --figures.
    figure: Optional[Dict] = None

    def cell(self, row: int, column: str):
        return self.rows[row][self.headers.index(column)]

    def column(self, column: str) -> List:
        index = self.headers.index(column)
        return [row[index] for row in self.rows]

    def row_by(self, column: str, value) -> Sequence:
        index = self.headers.index(column)
        for row in self.rows:
            if row[index] == value:
                return row
        raise KeyError(f"no row with {column}={value!r}")

    def format_table(self) -> str:
        """Render as an aligned text table (the figure's data series)."""
        def fmt(value) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        table = [self.headers] + [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(row[i]) for row in table) for i in range(len(self.headers))
        ]
        lines = [f"== {self.exp_id}: {self.title} =="]
        for index, row in enumerate(table):
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
            if index == 0:
                lines.append("  ".join("-" * w for w in widths))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


# Populated by repro.experiments.__init__; maps exp id -> run callable.
REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}


def register(exp_id: str):
    def decorator(run: Callable[..., ExperimentResult]):
        REGISTRY[exp_id] = run
        return run
    return decorator


def cycle_budget(fast: bool, warmup: int = 40_000, measure: int = 40_000):
    """(warmup, measure) cycles, shrunk ~6x in fast mode."""
    if fast:
        return max(4_000, warmup // 6), max(4_000, measure // 6)
    return warmup, measure

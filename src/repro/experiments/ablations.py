"""Ablation studies for the design choices DESIGN.md calls out.

* **reorder** — Section 4.1.1's intra-thread Read-over-Write reordering:
  run Loads+Stores under VPC with reordering on/off; per-thread
  bandwidth shares must be unchanged (guarantee preserved), while the
  reordering may only help latency.
* **capacity** — the VPC Capacity Manager vs. thread-oblivious shared
  LRU under an aggressive co-runner: the quota policy protects the
  victim thread's hit rate.
* **preempt** — Section 4.1.2's preemption latency: a latency-sensitive
  (low-MLP) subject at a high allocation against store-heavy
  backgrounds, where non-preemptibility costs a visible (but bounded)
  slice of target performance.
* **memory** — the VPM framework beyond the cache: one shared DRAM
  channel under FCFS vs. the fair-queuing memory scheduler, vs. the
  paper's private-channel isolation setup.
"""

from __future__ import annotations

from repro.common.config import VPCAllocation, baseline_config, private_equivalent
from repro.experiments.base import ExperimentResult, cycle_budget, register
from repro.experiments.parallel import SimPoint, run_points
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation


@register("ablation-reorder")
def run_reorder(fast: bool = False) -> ExperimentResult:
    warmup, measure = cycle_budget(fast, warmup=45_000, measure=30_000)
    vpc = VPCAllocation([0.5, 0.5], [0.5, 0.5])
    config = baseline_config(n_threads=2, arbiter="vpc", vpc=vpc)
    modes = (True, False)
    points = [
        SimPoint(config=config, traces=(("loads",), ("stores",)),
                 warmup=warmup, measure=measure,
                 intra_thread_row=intra_thread_row)
        for intra_thread_row in modes
    ]
    rows = []
    for intra_thread_row, result in zip(modes, run_points(points)):
        rows.append((
            "RoW-in-buffer" if intra_thread_row else "FIFO-in-buffer",
            result.ipcs[0],
            result.ipcs[1],
            result.utilizations["data"],
        ))
    return ExperimentResult(
        exp_id="ablation-reorder",
        title="Intra-thread RoW reordering inside the VPC arbiter buffers",
        headers=["mode", "loads_ipc", "stores_ipc", "data_util"],
        rows=rows,
        notes=["Section 4.1.1: reordering must not shift bandwidth between "
               "threads; per-thread IPCs stay (near-)identical"],
    )


@register("ablation-capacity")
def run_capacity(fast: bool = False) -> ExperimentResult:
    """Quota replacement vs. shared LRU where capacity actually binds.

    The 16MB baseline L2 cannot be thrashed within a tractable Python
    simulation, so this ablation shrinks the L2 to 64KB (keeping the
    pipeline identical) and pits a reuse-friendly victim — whose working
    set fits its half-cache quota — against a streaming aggressor.  With the VPC Capacity Manager the victim's working set stays resident;
    with shared LRU the stream flushes it continuously.

    Runs in-process (not through the parallel point runner): it inspects
    per-thread L2 occupancy on the live system after the run, which a
    :class:`~repro.system.simulator.SimulationResult` does not carry.
    """
    from dataclasses import replace

    from repro.workloads.synthetic import WorkloadProfile, synthetic_trace

    # The victim pool needs several full sweeps to reach LRU equilibrium,
    # so even the fast variant keeps a substantial warmup.
    warmup, measure = (30_000, 15_000) if fast else (60_000, 40_000)
    # The victim's reuse period must exceed the time the (DRAM-bandwidth-
    # capped) aggressor needs to flood the cache's slack capacity —
    # otherwise true LRU protects the victim by itself.  28KB reused at a
    # low access rate inside a 64KB cache with a 32KB way quota does it.
    victim = WorkloadProfile(
        name="victim", mem_fraction=0.05, store_fraction=0.05,
        p_hot=0.0, p_warm=1.0, p_cold=0.0,
        warm_bytes=28 * 1024,                 # fits the 32KB way quota
        run_length=3, store_run_length=6,
    ).validate()
    aggressor = WorkloadProfile(
        name="aggressor", mem_fraction=0.50, store_fraction=0.50,
        p_hot=0.0, p_warm=0.0, p_cold=1.0,
        cold_bytes=64 * 1024 * 1024,          # streams through everything
        run_length=1, store_run_length=1,
    ).validate()

    base = baseline_config(n_threads=2, arbiter="vpc",
                           vpc=VPCAllocation.equal(2))
    small_l2 = replace(base.l2, size_bytes=64 * 1024, ways=16)
    config = replace(base, l2=small_l2).validate()

    rows = []
    for policy in ("vpc", "lru"):
        system = CMPSystem(
            config,
            [synthetic_trace(victim, 0), synthetic_trace(aggressor, 1)],
            capacity_policy=policy,
        )
        result = run_simulation(system, warmup=warmup, measure=measure)
        read_accesses = result.read_hits + result.read_misses
        hit_rate = result.read_hits / read_accesses if read_accesses else 0.0
        occupancy = [0, 0]
        for bank in system.banks:
            counts = bank.array.occupancy_by_thread(2)
            occupancy[0] += counts[0]
            occupancy[1] += counts[1]
        total = sum(occupancy) or 1
        rows.append((
            policy,
            result.ipcs[0],
            result.ipcs[1],
            occupancy[0] / total,
            hit_rate,
        ))
    return ExperimentResult(
        exp_id="ablation-capacity",
        title="VPC Capacity Manager vs. shared LRU on a 64KB L2 "
              "(resident victim vs. streaming aggressor)",
        headers=["capacity_policy", "victim_ipc", "aggressor_ipc",
                 "victim_l2_share", "read_hit_rate"],
        rows=rows,
        notes=["the quota policy keeps the victim's working set resident; "
               "shared LRU lets the stream flush it"],
    )


@register("ablation-preempt")
def run_preempt(fast: bool = False) -> ExperimentResult:
    """Preemption-latency sensitivity (Section 4.1.2-4.1.3).

    mcf (dependent loads, low MLP) is the susceptible class: compare its
    normalized IPC at a high allocation against bursty backgrounds with
    equake-style high-MLP traffic in the same seat.
    """
    warmup, measure = cycle_budget(fast, warmup=35_000, measure=25_000)
    names = ("mcf", "swim")
    points = []
    for name in names:
        private = private_equivalent(baseline_config(n_threads=4),
                                     phi=0.75, beta=0.25)
        points.append(SimPoint(
            config=private, traces=(("spec", name),),
            warmup=warmup, measure=measure, cacheable=True,
        ))
        vpc = VPCAllocation([0.75, 0.25 / 3, 0.25 / 3, 0.25 / 3], [0.25] * 4)
        shared_config = baseline_config(n_threads=4, arbiter="vpc", vpc=vpc)
        points.append(SimPoint(
            config=shared_config,
            traces=(("spec", name), ("stores",), ("stores",), ("stores",)),
            warmup=warmup, measure=measure,
        ))
    results = iter(run_points(points))
    rows = []
    for name in names:
        target = next(results).ipcs[0]
        result = next(results)
        rows.append((
            name, target, result.ipcs[0],
            result.ipcs[0] / target if target else 0.0,
        ))
    return ExperimentResult(
        exp_id="ablation-preempt",
        title="Preemption-latency exposure at phi=.75 vs. Stores backgrounds",
        headers=["subject", "target_ipc", "shared_ipc", "normalized"],
        rows=rows,
        notes=["low-MLP subjects (mcf) absorb preemption latency on the "
               "critical path; high-MLP subjects amortize it over bursts"],
    )


@register("ablation-memory")
def run_memory(fast: bool = False) -> ExperimentResult:
    """The VPM framework beyond the cache: shared memory channel.

    The paper isolates cache effects with private per-thread DRAM
    channels; the VPM framework's memory-bandwidth component is the FQ
    memory controller of Nesbit et al. [18].  This ablation puts a
    miss-heavy subject (swim) on ONE channel with three read-flooding
    co-runners and compares private channels, shared-FCFS, and
    shared-FQ scheduling.
    """
    from dataclasses import replace

    from repro.common.config import MemoryConfig
    from repro.workloads.synthetic import WorkloadProfile, synthetic_trace

    warmup, measure = cycle_budget(fast, warmup=30_000, measure=20_000)
    flood = WorkloadProfile(
        name="flood", mem_fraction=0.5, store_fraction=0.02,
        p_hot=0.0, p_warm=0.0, p_cold=1.0, cold_bytes=64 * 1024 * 1024,
        run_length=1, store_run_length=1,
    ).validate()

    variants = (
        ("private", MemoryConfig()),
        ("shared-fcfs", MemoryConfig(sharing="shared", shared_scheduler="fcfs")),
        ("shared-fq", MemoryConfig(sharing="shared", shared_scheduler="fq")),
    )
    points = []
    for label, memory in variants:
        config = replace(
            baseline_config(n_threads=4, arbiter="vpc",
                            vpc=VPCAllocation.equal(4)),
            memory=memory,
        ).validate()
        points.append(SimPoint(
            config=config,
            traces=(("spec", "swim"),) + (("synthetic", flood),) * 3,
            warmup=warmup, measure=measure,
        ))
    rows = []
    for (label, _), result in zip(variants, run_points(points)):
        rows.append((label, result.ipcs[0],
                     sum(result.ipcs[1:]) / 3.0))
    return ExperimentResult(
        exp_id="ablation-memory",
        title="Memory-channel sharing: swim vs. three read flooders",
        headers=["channels", "subject_ipc", "mean_flooder_ipc"],
        rows=rows,
        notes=["shared-fcfs serves the channel proportionally to request "
               "rate (the flooders); shared-fq restores the subject's "
               "quarter-bandwidth guarantee, approaching private channels"],
    )


@register("ablation-fairness")
def run_fairness(fast: bool = False) -> ExperimentResult:
    """Fairness-policy comparison the paper defers (Section 4.1.3).

    Earliest-virtual-FINISH (the paper's WFQ/EDF policy) vs.
    earliest-virtual-START (SFQ) on a bursty subject: the virtual finish
    time doubles as an excess-service indicator, so WFQ penalizes a
    thread for bursts of excess consumption more promptly than SFQ.
    Both must keep every thread at its guarantee.
    """
    warmup, measure = cycle_budget(fast, warmup=40_000, measure=30_000)
    vpc = VPCAllocation([0.5, 0.5], [0.5, 0.5])
    config = baseline_config(n_threads=2, arbiter="vpc", vpc=vpc)
    selections = ("finish", "start")
    points = [
        SimPoint(config=config, traces=(("spec", "mcf"), ("stores",)),
                 warmup=warmup, measure=measure, vpc_selection=selection)
        for selection in selections
    ]
    rows = []
    for selection, result in zip(selections, run_points(points)):
        rows.append((
            "WFQ (finish)" if selection == "finish" else "SFQ (start)",
            result.ipcs[0],
            result.ipcs[1],
            result.utilizations["data"],
        ))
    return ExperimentResult(
        exp_id="ablation-fairness",
        title="Excess-bandwidth fairness policy: WFQ vs. SFQ selection",
        headers=["policy", "mcf_ipc", "stores_ipc", "data_util"],
        rows=rows,
        notes=["both meet the bandwidth guarantee; differences are in "
               "burst penalties and write-quantum sensitivity"],
    )

"""Figure 8: Loads + Stores microbenchmarks under every arbiter policy.

Processor 1 runs Loads, processor 2 runs Stores.  Policies: RoW-FCFS,
FCFS, and VPC with the Stores thread allocated 0/25/50/75/100 % of the
cache bandwidth (leftover goes to Loads).  For each VPC point the
target IPCs come from equivalently-provisioned private machines
(Section 5.3).

Paper shape: RoW-FCFS starves Stores completely; FCFS gives Stores 67 %
of the data array; all five VPC points divide bandwidth precisely and
both threads meet their targets.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import VPCAllocation, baseline_config, private_equivalent
from repro.experiments.base import ExperimentResult, register
from repro.experiments.parallel import SimPoint, run_points

VPC_STORE_SHARES = (0.0, 0.25, 0.5, 0.75, 1.0)


def _target_point(config, trace_kind: str, phi: float,
                  warmup: int, measure: int) -> Optional[SimPoint]:
    """Target-IPC point on the private machine (phi of bandwidth, half
    the ways); ``None`` at phi = 0 — the paper sets that target IPC to 0."""
    if phi <= 0.0:
        return None
    private = private_equivalent(config, phi=phi, beta=0.5)
    return SimPoint(config=private, traces=((trace_kind,),),
                    warmup=warmup, measure=measure, cacheable=True)


def _shared_point(arbiter: str, stores_share: Optional[float],
                  warmup: int, measure: int):
    if stores_share is None:
        vpc = VPCAllocation.equal(2)
        label = arbiter.upper()
    else:
        vpc = VPCAllocation([1.0 - stores_share, stores_share], [0.5, 0.5])
        label = f"VPC {int(stores_share * 100)}%"
    config = baseline_config(n_threads=2, arbiter=arbiter, vpc=vpc)
    point = SimPoint(config=config, traces=(("loads",), ("stores",)),
                     warmup=warmup, measure=measure)
    return label, point


@register("fig8")
def run(fast: bool = False) -> ExperimentResult:
    # Fast mode still needs the microbenchmark arrays resident in the L2.
    warmup, measure = (25_000, 8_000) if fast else (45_000, 30_000)
    shares = (0.25, 0.75) if fast else VPC_STORE_SHARES

    # One flat batch: every shared run and every (nonzero-phi) private
    # target is an independent point, so the whole figure fans out.
    points = []

    def add(point: SimPoint) -> int:
        points.append(point)
        return len(points) - 1

    shared = [
        (label, add(point))
        for label, point in (
            _shared_point(arbiter, None, warmup, measure)
            for arbiter in ("row-fcfs", "fcfs")
        )
    ]
    target_of = {}
    for share in shares:
        label, point = _shared_point("vpc", share, warmup, measure)
        shared.append((label, add(point)))
        for kind, phi in (("loads", 1.0 - share), ("stores", share)):
            target = _target_point(point.config, kind, phi, warmup, measure)
            if target is not None:
                target_of[(share, kind)] = add(target)
    results = run_points(points)

    def target_ipc(share: float, kind: str) -> float:
        index = target_of.get((share, kind))
        return results[index].ipcs[0] if index is not None else 0.0

    rows = []
    for (label, index), share in zip(shared, (None, None, *shares)):
        result = results[index]
        if share is None:
            targets = (float("nan"), float("nan"))
        else:
            targets = (target_ipc(share, "loads"), target_ipc(share, "stores"))
        rows.append((label, result.ipcs[0], targets[0], result.ipcs[1],
                     targets[1], result.utilizations["data"]))

    return ExperimentResult(
        exp_id="fig8",
        title="Loads and Stores microbenchmarks: IPC and data-array utilization",
        headers=["policy", "loads_ipc", "loads_target", "stores_ipc",
                 "stores_target", "data_util"],
        rows=rows,
        notes=[
            "x%: share of cache bandwidth allocated to Stores (rest to Loads)",
            "paper: RoW starves Stores; FCFS splits data array 67/33 for "
            "Stores; every VPC point meets both targets",
        ],
    )

"""Figure 8: Loads + Stores microbenchmarks under every arbiter policy.

Processor 1 runs Loads, processor 2 runs Stores.  Policies: RoW-FCFS,
FCFS, and VPC with the Stores thread allocated 0/25/50/75/100 % of the
cache bandwidth (leftover goes to Loads).  For each VPC point the
target IPCs come from equivalently-provisioned private machines
(Section 5.3).

Paper shape: RoW-FCFS starves Stores completely; FCFS gives Stores 67 %
of the data array; all five VPC points divide bandwidth precisely and
both threads meet their targets.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import VPCAllocation, baseline_config, private_equivalent
from repro.experiments.base import ExperimentResult, register
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.workloads.microbench import loads_trace, stores_trace

VPC_STORE_SHARES = (0.0, 0.25, 0.5, 0.75, 1.0)


def _target(config, trace_factory, phi: float, warmup: int, measure: int) -> float:
    """Target IPC on the private machine (phi of bandwidth, half the ways)."""
    if phi <= 0.0:
        return 0.0  # paper: 'for phi_i = 0 we set the target IPC to 0'
    private = private_equivalent(config, phi=phi, beta=0.5)
    system = CMPSystem(private, [trace_factory(0)])
    return run_simulation(system, warmup=warmup, measure=measure).ipcs[0]


@register("fig8")
def run(fast: bool = False) -> ExperimentResult:
    # Fast mode still needs the microbenchmark arrays resident in the L2.
    warmup, measure = (25_000, 8_000) if fast else (45_000, 30_000)
    shares = (0.25, 0.75) if fast else VPC_STORE_SHARES
    rows = []

    def shared_run(arbiter: str, stores_share: Optional[float] = None):
        if stores_share is None:
            vpc = VPCAllocation.equal(2)
            label = arbiter.upper()
        else:
            vpc = VPCAllocation([1.0 - stores_share, stores_share], [0.5, 0.5])
            label = f"VPC {int(stores_share * 100)}%"
        config = baseline_config(n_threads=2, arbiter=arbiter, vpc=vpc)
        system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
        result = run_simulation(system, warmup=warmup, measure=measure)
        return label, config, result

    for arbiter in ("row-fcfs", "fcfs"):
        label, config, result = shared_run(arbiter)
        rows.append((label, result.ipcs[0], float("nan"), result.ipcs[1],
                     float("nan"), result.utilizations["data"]))

    for share in shares:
        label, config, result = shared_run("vpc", share)
        loads_target = _target(config, loads_trace, 1.0 - share, warmup, measure)
        stores_target = _target(config, stores_trace, share, warmup, measure)
        rows.append((label, result.ipcs[0], loads_target, result.ipcs[1],
                     stores_target, result.utilizations["data"]))

    return ExperimentResult(
        exp_id="fig8",
        title="Loads and Stores microbenchmarks: IPC and data-array utilization",
        headers=["policy", "loads_ipc", "loads_target", "stores_ipc",
                 "stores_target", "data_util"],
        rows=rows,
        notes=[
            "x%: share of cache bandwidth allocated to Stores (rest to Loads)",
            "paper: RoW starves Stores; FCFS splits data array 67/33 for "
            "Stores; every VPC point meets both targets",
        ],
    )

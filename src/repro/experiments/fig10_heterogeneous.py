"""Headline experiment: heterogeneous 4-thread workloads, VPC vs. FCFS.

The abstract's claim: "On a CMP running heterogeneous workloads, VPCs
improve throughput by eliminating negative interference, i.e., VPCs
improve average performance by 14% (harmonic mean of normalized IPCs)
and by 25% (minimum normalized IPC)."

Each mix runs under the conventional FCFS baseline and under VPC with
equal shares (phi_i = beta_i = .25).  Every thread's IPC is normalized
to its private-machine target (phi = .25, beta = .25); the workload
metrics are the harmonic mean and the minimum of the four normalized
IPCs, and the figure reports VPC's improvement over the baseline.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.config import VPCAllocation, baseline_config, private_equivalent
from repro.common.stats import harmonic_mean
from repro.experiments.base import ExperimentResult, register
from repro.system.cmp import CMPSystem
from repro.system.simulator import run_simulation
from repro.workloads.profiles import HETEROGENEOUS_MIXES, spec_trace

FAST_MIXES = ("mix3", "mix1")


def _targets(benchmarks: List[str], warmup: int, measure: int,
             cache: Dict[str, float]) -> List[float]:
    config = baseline_config(n_threads=4)
    targets = []
    for name in benchmarks:
        if name not in cache:
            private = private_equivalent(config, phi=0.25, beta=0.25)
            system = CMPSystem(private, [spec_trace(name, 0)])
            cache[name] = run_simulation(
                system, warmup=warmup, measure=measure
            ).ipcs[0]
        targets.append(cache[name])
    return targets


def _mix_metrics(benchmarks: List[str], arbiter: str, warmup: int,
                 measure: int, targets: List[float]):
    config = baseline_config(n_threads=4, arbiter=arbiter,
                             vpc=VPCAllocation.equal(4))
    traces = [spec_trace(name, tid) for tid, name in enumerate(benchmarks)]
    # The baseline is the *conventional* cache: FCFS arbiters and a
    # thread-oblivious shared-LRU replacement; VPC brings both the FQ
    # arbiters and the quota capacity manager.
    capacity = "vpc" if arbiter == "vpc" else "lru"
    system = CMPSystem(config, traces, capacity_policy=capacity)
    result = run_simulation(system, warmup=warmup, measure=measure)
    normalized = [
        ipc / target if target > 0 else 0.0
        for ipc, target in zip(result.ipcs, targets)
    ]
    return harmonic_mean(normalized), min(normalized)


@register("fig10")
def run(fast: bool = False) -> ExperimentResult:
    # The min-normalized-IPC metric is sensitive to the measurement
    # window (one thread's worst interval defines it), so the full run
    # uses a long window for stability.
    warmup, measure = (15_000, 10_000) if fast else (40_000, 50_000)
    mixes = FAST_MIXES if fast else tuple(HETEROGENEOUS_MIXES)
    target_cache: Dict[str, float] = {}
    rows = []
    hm_gains = []
    min_gains = []
    for mix_name in mixes:
        benchmarks = HETEROGENEOUS_MIXES[mix_name]
        targets = _targets(benchmarks, warmup, measure, target_cache)
        base_hm, base_min = _mix_metrics(benchmarks, "fcfs", warmup, measure, targets)
        vpc_hm, vpc_min = _mix_metrics(benchmarks, "vpc", warmup, measure, targets)
        hm_gain = (vpc_hm / base_hm - 1.0) * 100 if base_hm else float("nan")
        min_gain = (vpc_min / base_min - 1.0) * 100 if base_min else float("nan")
        hm_gains.append(hm_gain)
        min_gains.append(min_gain)
        rows.append((
            f"{mix_name}({'+'.join(benchmarks)})",
            base_hm, vpc_hm, hm_gain, base_min, vpc_min, min_gain,
        ))
    rows.append((
        "average",
        sum(r[1] for r in rows) / len(rows),
        sum(r[2] for r in rows) / len(rows),
        sum(hm_gains) / len(hm_gains),
        sum(r[4] for r in rows) / len(rows),
        sum(r[5] for r in rows) / len(rows),
        sum(min_gains) / len(min_gains),
    ))
    return ExperimentResult(
        exp_id="fig10",
        title="Heterogeneous workloads: normalized-IPC harmonic mean and "
              "minimum, FCFS baseline vs. VPC equal shares",
        headers=["mix", "fcfs_hmean", "vpc_hmean", "hmean_gain_%",
                 "fcfs_min", "vpc_min", "min_gain_%"],
        rows=rows,
        notes=[
            "normalized to private-machine targets at phi=beta=.25",
            "paper headline: VPC improves the harmonic mean by 14% and "
            "the minimum normalized IPC by 25%",
        ],
    )

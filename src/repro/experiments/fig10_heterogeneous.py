"""Headline experiment: heterogeneous 4-thread workloads, VPC vs. FCFS.

The abstract's claim: "On a CMP running heterogeneous workloads, VPCs
improve throughput by eliminating negative interference, i.e., VPCs
improve average performance by 14% (harmonic mean of normalized IPCs)
and by 25% (minimum normalized IPC)."

Each mix runs under the conventional FCFS baseline and under VPC with
equal shares (phi_i = beta_i = .25).  Every thread's IPC is normalized
to its private-machine target (phi = .25, beta = .25); the workload
metrics are the harmonic mean and the minimum of the four normalized
IPCs, and the figure reports VPC's improvement over the baseline.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.config import VPCAllocation, baseline_config, private_equivalent
from repro.common.stats import harmonic_mean
from repro.experiments.base import ExperimentResult, register
from repro.experiments.parallel import SimPoint, run_points
from repro.system.simulator import SimulationResult
from repro.workloads.profiles import HETEROGENEOUS_MIXES

FAST_MIXES = ("mix3", "mix1")


def _target_point(name: str, warmup: int, measure: int) -> SimPoint:
    private = private_equivalent(baseline_config(n_threads=4),
                                 phi=0.25, beta=0.25)
    return SimPoint(config=private, traces=(("spec", name),),
                    warmup=warmup, measure=measure, cacheable=True)


def _mix_point(benchmarks: List[str], arbiter: str,
               warmup: int, measure: int) -> SimPoint:
    config = baseline_config(n_threads=4, arbiter=arbiter,
                             vpc=VPCAllocation.equal(4))
    # The baseline is the *conventional* cache: FCFS arbiters and a
    # thread-oblivious shared-LRU replacement; VPC brings both the FQ
    # arbiters and the quota capacity manager.
    capacity = "vpc" if arbiter == "vpc" else "lru"
    return SimPoint(
        config=config,
        traces=tuple(("spec", name) for name in benchmarks),
        warmup=warmup, measure=measure, capacity_policy=capacity,
    )


def _metrics(result: SimulationResult, targets: List[float]):
    normalized = [
        ipc / target if target > 0 else 0.0
        for ipc, target in zip(result.ipcs, targets)
    ]
    return harmonic_mean(normalized), min(normalized)


@register("fig10")
def run(fast: bool = False) -> ExperimentResult:
    # The min-normalized-IPC metric is sensitive to the measurement
    # window (one thread's worst interval defines it), so the full run
    # uses a long window for stability.
    warmup, measure = (15_000, 10_000) if fast else (40_000, 50_000)
    mixes = FAST_MIXES if fast else tuple(HETEROGENEOUS_MIXES)
    # One batch: a private target per distinct benchmark, then an FCFS
    # and a VPC shared run per mix.
    unique = []
    for mix_name in mixes:
        for name in HETEROGENEOUS_MIXES[mix_name]:
            if name not in unique:
                unique.append(name)
    points = [_target_point(name, warmup, measure) for name in unique]
    for mix_name in mixes:
        benchmarks = HETEROGENEOUS_MIXES[mix_name]
        points.append(_mix_point(benchmarks, "fcfs", warmup, measure))
        points.append(_mix_point(benchmarks, "vpc", warmup, measure))
    results = run_points(points)
    target_ipc: Dict[str, float] = {
        name: results[index].ipcs[0] for index, name in enumerate(unique)
    }
    mix_results = iter(results[len(unique):])

    rows = []
    hm_gains = []
    min_gains = []
    for mix_name in mixes:
        benchmarks = HETEROGENEOUS_MIXES[mix_name]
        targets = [target_ipc[name] for name in benchmarks]
        base_hm, base_min = _metrics(next(mix_results), targets)
        vpc_hm, vpc_min = _metrics(next(mix_results), targets)
        hm_gain = (vpc_hm / base_hm - 1.0) * 100 if base_hm else float("nan")
        min_gain = (vpc_min / base_min - 1.0) * 100 if base_min else float("nan")
        hm_gains.append(hm_gain)
        min_gains.append(min_gain)
        rows.append((
            f"{mix_name}({'+'.join(benchmarks)})",
            base_hm, vpc_hm, hm_gain, base_min, vpc_min, min_gain,
        ))
    rows.append((
        "average",
        sum(r[1] for r in rows) / len(rows),
        sum(r[2] for r in rows) / len(rows),
        sum(hm_gains) / len(hm_gains),
        sum(r[4] for r in rows) / len(rows),
        sum(r[5] for r in rows) / len(rows),
        sum(min_gains) / len(min_gains),
    ))
    return ExperimentResult(
        exp_id="fig10",
        title="Heterogeneous workloads: normalized-IPC harmonic mean and "
              "minimum, FCFS baseline vs. VPC equal shares",
        headers=["mix", "fcfs_hmean", "vpc_hmean", "hmean_gain_%",
                 "fcfs_min", "vpc_min", "min_gain_%"],
        rows=rows,
        notes=[
            "normalized to private-machine targets at phi=beta=.25",
            "paper headline: VPC improves the harmonic mean by 14% and "
            "the minimum normalized IPC by 25%",
        ],
    )

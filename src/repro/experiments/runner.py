"""Experiment CLI: ``python -m repro.experiments <id>... [--fast]``.

``<id>`` is any key printed by ``--list`` (table1, table2, fig4..fig10,
ablation-*), or ``all``.  ``--fast`` runs the reduced-fidelity variant
used by the test suite.  ``--jobs N`` fans independent simulation
points across N worker processes (0 = all CPUs); ``--no-cache``
disables the on-disk target-IPC cache (see
:mod:`repro.experiments.parallel`).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import parallel
from repro.experiments.base import REGISTRY, ExperimentResult


def run_experiment(exp_id: str, fast: bool = False) -> ExperimentResult:
    if exp_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(REGISTRY)}"
        )
    return REGISTRY[exp_id](fast=fast)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids, or 'all'")
    parser.add_argument("--fast", action="store_true",
                        help="reduced-fidelity runs (tests/CI)")
    parser.add_argument("--chart", action="store_true",
                        help="render numeric columns as bar charts")
    parser.add_argument("--list", action="store_true",
                        help="list available experiment ids")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent simulation "
                             "points (0 = all CPUs; default 1, serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk target-IPC result cache")
    args = parser.parse_args(argv)
    parallel.configure(jobs=args.jobs, cache=not args.no_cache)

    if args.list or not args.experiments:
        for exp_id in sorted(REGISTRY):
            print(exp_id)
        return 0

    requested = args.experiments
    if requested == ["all"]:
        requested = sorted(REGISTRY)

    for exp_id in requested:
        started = time.time()
        result = run_experiment(exp_id, fast=args.fast)
        if args.chart:
            from repro.experiments.charts import render_result
            print(render_result(result))
        else:
            print(result.format_table())
        print(f"({time.time() - started:.1f}s)\n")
    stats = parallel.cache_stats
    if stats["hits"] or stats["misses"]:
        print(f"target cache: {stats['hits']} hits, "
              f"{stats['misses']} misses ({parallel.cache_dir()})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

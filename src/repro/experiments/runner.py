"""Experiment CLI: ``python -m repro.experiments <id>... [--fast]``.

``<id>`` is any key printed by ``--list`` (table1, table2, fig4..fig10,
ablation-*), or ``all``.  ``--fast`` runs the reduced-fidelity variant
used by the test suite.  ``--jobs N`` fans independent simulation
points across N worker processes (0 = all CPUs); ``--no-cache``
disables the on-disk target-IPC cache (see
:mod:`repro.experiments.parallel`).  Observability (see
docs/ARCHITECTURE.md; shared flags live in
:mod:`repro.telemetry.options`): ``--progress`` reports per-point
completion and ETA on stderr, ``--trace PATH`` captures the runner's
orchestration events as a Chrome/Perfetto trace, ``--spans PATH``
traces the host-time orchestration layer, ``--alerts RULES`` evaluates
declarative alert rules against the live stream (a fired
``severity=page`` rule exits nonzero), ``--requests [DIR]`` attaches
per-request latency tracing to every point (exact tail quantiles,
worst-k exemplar waterfalls, and ``--slo SPEC`` attainment; the
per-point ``repro.requests/1`` documents land in DIR), and
``--manifest [DIR]`` writes each experiment's provenance record next
to the output.

QoS policy (see docs/ARCHITECTURE.md "QoS control plane"):
``--policy {fcfs,vpc,lfoc}`` remaps every multi-thread point onto one
policy family, ``--controller {lfoc,fairness}`` attaches a dynamic
share controller re-tuned every ``--epoch`` cycles, and ``--figures
[DIR]`` writes the machine-readable figure document (e.g. the
``repro.policy-frontier/1`` frontier) for experiments that emit one.

Resilience (see docs/ARCHITECTURE.md "Resilience"): ``--run-dir DIR``
routes execution through the journaled fault-tolerant fleet —
checkpoints every ``--checkpoint-every`` cycles, per-point
``--point-timeout``, ``--max-retries`` with backoff — and ``--resume
DIR`` re-enters an interrupted run, skipping what already finished.
``--chaos SPEC`` arms the fault injector (tests/CI only).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.experiments import parallel
from repro.experiments.base import REGISTRY, ExperimentResult
from repro.resilience.fleet import PointsExcludedError
from repro.telemetry import RunManifest


def run_experiment(exp_id: str, fast: bool = False,
                   manifest_extra: Optional[dict] = None) -> ExperimentResult:
    """Run one experiment; the result carries a provenance manifest.

    When metrics collection is configured (``parallel.configure(...,
    metrics=window)``), the per-point snapshots the workers produced are
    drained here and attached as one aggregate on ``result.metrics``.

    ``manifest_extra`` merges additional provenance keys into the
    manifest (the CLI records the live telemetry endpoint here, so
    aggregators/tests can discover ``--serve 0``'s auto-assigned port
    without scraping stdout).
    """
    if exp_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(REGISTRY)}"
        )
    cache_before = dict(parallel.cache_stats)
    kernel = parallel.configured_kernel()
    live = parallel.configured_live()
    spans = parallel.configured_spans()
    if live is not None:
        live.begin_run(exp_id, kernel=kernel)
    started = time.monotonic()
    exp_span = None
    if spans is not None:
        exp_span = spans.begin(f"experiment.{exp_id}", fast=fast)
    result = REGISTRY[exp_id](fast=fast)
    if spans is not None:
        spans.end(exp_span)
    snapshots = parallel.drain_metrics()
    if snapshots:
        from repro.telemetry import merge_attribution, merge_snapshots
        aggregate = merge_snapshots(snapshots)
        aggregate["attribution"] = merge_attribution(
            [snap.get("attribution") for snap in snapshots]
        )
        # Recorded here AND injected by LiveRun.merged() so the disk
        # aggregate stays byte-identical to what /snapshot serves.
        aggregate["kernel"] = kernel
        result.metrics = aggregate
    if live is not None:
        # /snapshot now serves the exact aggregate written to disk.
        live.finish_run(result.metrics)
    extra = dict(manifest_extra or {})
    resilience = parallel.configured_resilience()
    if resilience is not None:
        # Resume lineage: the manifest records which run directory this
        # result was (re)assembled from and under what policy.
        extra["resilience"] = {
            "run_dir": str(resilience.run_dir),
            "checkpoint_every": resilience.checkpoint_every,
            "max_retries": resilience.max_retries,
            "chaos_armed": (resilience.chaos is not None
                            and resilience.chaos.armed()),
        }
    result.manifest = RunManifest.collect(
        kernel=kernel,
        cache={
            key: parallel.cache_stats[key] - cache_before[key]
            for key in ("hits", "misses")
        },
        wall_time_s=round(time.monotonic() - started, 3),
        exp_id=exp_id,
        fast=fast,
        **extra,
    )
    return result


def main(argv: Optional[List[str]] = None) -> int:
    from repro.telemetry.options import telemetry_options
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
        parents=[telemetry_options()],
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids, or 'all'")
    parser.add_argument("--fast", action="store_true",
                        help="reduced-fidelity runs (tests/CI)")
    parser.add_argument("--chart", action="store_true",
                        help="render numeric columns as bar charts")
    parser.add_argument("--list", action="store_true",
                        help="list available experiment ids")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent simulation "
                             "points (0 = all CPUs; default 1, serial)")
    parser.add_argument("--lanes", type=int, default=1, metavar="K",
                        help="advance up to K points in lockstep in one "
                             "process (alternative to --jobs; incompatible "
                             "with --serve and --run-dir/--resume)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk target-IPC result cache")
    parser.add_argument("--progress", action="store_true",
                        help="report per-point progress and ETA on stderr")
    parser.add_argument("--manifest", nargs="?", const=".", default=None,
                        metavar="DIR",
                        help="write <exp_id>.manifest.json per experiment "
                             "into DIR (default: current directory)")
    parser.add_argument("--metrics", nargs="?", const=".", default=None,
                        metavar="DIR",
                        help="collect per-point time-series metrics and "
                             "write <exp_id>.metrics.json into DIR "
                             "(default: current directory; disables the "
                             "result cache for observed points)")
    parser.add_argument("--report", nargs="?", const=".", default=None,
                        metavar="DIR",
                        help="print a QoS fleet report card per experiment "
                             "and write <exp_id>.report.json into DIR "
                             "(implies metrics collection)")
    parser.add_argument("--cpi-stacks", action="store_true",
                        help="attach per-thread cycle accounting to every "
                             "point: CPI stacks with exact conservation "
                             "ride the metrics aggregate, report cards "
                             "gain a slowdown decomposition (implies "
                             "metrics collection)")
    parser.add_argument("--stacks", nargs="?", const=".", default=None,
                        metavar="DIR",
                        help="write <exp_id>.stacks.json (the per-point "
                             "CPI-stack documents) into DIR (default: "
                             "current directory; requires --cpi-stacks)")
    parser.add_argument("--requests", nargs="?", const=".", default=None,
                        metavar="DIR",
                        help="attach per-request latency tracing to every "
                             "point: exact tail quantiles, worst-k "
                             "exemplar waterfalls, and SLO attainment "
                             "ride the metrics aggregate and report "
                             "cards; write <exp_id>.requests.json (the "
                             "per-point documents) into DIR (default: "
                             "current directory; implies metrics "
                             "collection)")
    parser.add_argument("--slo", default=None, metavar="SPEC",
                        help="latency SLO rules evaluated into every "
                             "traced document: an integer cycle "
                             "threshold shorthand or a JSON/TOML rules "
                             "file (requires --requests)")
    parser.add_argument("--policy", default=None, metavar="NAME",
                        choices=list(parallel.POLICIES),
                        help="remap every multi-thread point to one policy "
                             "family: fcfs (conventional cache), vpc "
                             "(static equal shares), or lfoc (VPC + the "
                             "LFOC clustering controller); solo target "
                             "points are never remapped")
    parser.add_argument("--controller", default=None, metavar="NAME",
                        choices=["lfoc", "fairness"],
                        help="attach a repro.qos controller to every "
                             "multi-thread point (lfoc or fairness); "
                             "implies VPC arbiters/capacity on those "
                             "points")
    parser.add_argument("--epoch", type=int, default=None, metavar="CYCLES",
                        help="QoS controller epoch length in cycles "
                             "(default 5000; requires --policy lfoc or "
                             "--controller)")
    parser.add_argument("--figures", nargs="?", const=".", default=None,
                        metavar="DIR",
                        help="write <exp_id>.figure.json (the machine-"
                             "readable figure document, e.g. the policy-"
                             "frontier frontier) into DIR for experiments "
                             "that produce one (default: current "
                             "directory)")
    parser.add_argument("--history", default=None, metavar="PATH",
                        help="append one run-history ledger entry per "
                             "experiment (manifest + headline metrics + "
                             "CPI stacks) to the JSONL file at PATH; "
                             "inspect with 'python -m repro history'")
    parser.add_argument("--run-dir", default=None, metavar="DIR",
                        help="run through the fault-tolerant fleet, "
                             "journaling progress (and checkpoints, "
                             "results) into DIR so the run can be resumed")
    parser.add_argument("--resume", default=None, metavar="DIR",
                        help="resume an interrupted run from its run "
                             "directory: completed points are not "
                             "re-simulated, half-done points restart from "
                             "their last checkpoint")
    parser.add_argument("--checkpoint-every", type=int, default=0,
                        metavar="CYCLES",
                        help="checkpoint each in-flight point every N "
                             "simulated cycles (0 = off; requires "
                             "--run-dir/--resume)")
    parser.add_argument("--point-timeout", type=float, default=0.0,
                        metavar="SECONDS",
                        help="kill and retry a fleet worker stuck on one "
                             "point longer than this (0 = no timeout)")
    parser.add_argument("--max-retries", type=int, default=2, metavar="N",
                        help="retries per failing point before it is "
                             "excluded from the batch (default 2)")
    parser.add_argument("--chaos", default=None, metavar="SPEC",
                        help="arm the fault injector, e.g. "
                             "'kill=0.3,corrupt=0.2,seed=7' "
                             "(tests/CI; requires --run-dir)")
    args = parser.parse_args(argv)

    run_dir = args.resume or args.run_dir
    resilience = None
    if run_dir is not None:
        from repro.resilience import ChaosConfig, ResilienceConfig, replay
        chaos = ChaosConfig.parse(args.chaos) if args.chaos else None
        resilience = ResilienceConfig(
            run_dir=run_dir,
            checkpoint_every=args.checkpoint_every,
            point_timeout=args.point_timeout,
            max_retries=args.max_retries,
            chaos=chaos,
        )
        if args.resume:
            state = replay(run_dir)
            counts = state.summary()
            print(f"resuming {run_dir}: "
                  f"{counts['done']} done, {counts['pending']} pending, "
                  f"{counts['running']} interrupted mid-point, "
                  f"{counts['excluded']} previously excluded", flush=True)
    elif args.checkpoint_every or args.chaos:
        parser.error("--checkpoint-every/--chaos require --run-dir "
                     "or --resume")

    def resume_command() -> Optional[str]:
        if run_dir is None:
            return None
        raw = list(argv) if argv is not None else sys.argv[1:]
        kept, skip = [], False
        for token in raw:
            if skip:
                skip = False
                continue
            if token in ("--resume", "--run-dir"):
                skip = True
                continue
            kept.append(token)
        return ("python -m repro.experiments "
                + " ".join(kept + ["--resume", str(run_dir)]))

    progress = ring = None
    telemetry = None
    if args.progress or args.serve is not None:
        from repro.telemetry import ProgressReporter
        progress = ProgressReporter()
    if args.trace:
        from repro.telemetry import RingBufferSink, TelemetryBus
        telemetry = TelemetryBus()
        ring = telemetry.attach(RingBufferSink())
    if args.stacks is not None and not args.cpi_stacks:
        parser.error("--stacks requires --cpi-stacks")
    if args.alerts_out and not args.alerts:
        parser.error("--alerts-out requires --alerts")
    slo_rules = ()
    if args.slo is not None:
        if args.requests is None:
            parser.error("--slo requires --requests")
        from repro.telemetry.requests import load_slo
        try:
            slo_rules = tuple(load_slo(args.slo))
        except (OSError, ValueError) as error:
            parser.error(f"--slo: {error}")
    if args.requests is not None and run_dir is not None:
        parser.error("--requests cannot ride the resilient fleet; drop "
                     "--run-dir/--resume")
    tracer = None
    if args.spans is not None:
        from repro.telemetry.spans import SpanTracer
        # Sharing the --trace bus (when present) lands host-time spans
        # in the same Perfetto export as the orchestration events.
        tracer = SpanTracer(sink=telemetry)
    engine = None
    if args.alerts:
        from repro.telemetry.alerts import AlertEngine, load_rules
        engine = AlertEngine(load_rules(args.alerts))
    metrics_window = None
    if (args.metrics is not None or args.report is not None
            or args.serve is not None or args.cpi_stacks
            or args.requests is not None
            or args.history is not None or engine is not None):
        # Cycle accounting, request tracing, the history ledger, and
        # alert evaluation all ride the metrics aggregate, so each
        # implies collection.
        metrics_window = args.metrics_window
    live = server = None
    if args.serve is not None or engine is not None:
        # --alerts without --serve still needs the LiveRun event bus so
        # the engine sees the stream; it just never opens a socket.
        from repro.telemetry import LiveRun, TelemetryServer
        live = LiveRun(stale_after=args.stale_after, progress=progress)
        live.alert_engine = engine
        if tracer is not None:
            live.on_span = tracer.ingest
        if args.serve is not None:
            server = TelemetryServer(live, port=args.serve)
            server.start()
            print(f"serving telemetry on {server.url} "
                  "(/metrics /healthz /snapshot /events)", flush=True)
    if args.lanes > 1:
        if args.jobs > 1:
            parser.error("--lanes and --jobs are alternative parallelism "
                         "modes; pick one")
        if live is not None:
            parser.error("--lanes cannot stream a live feed; drop "
                         "--serve/--alerts")
        if run_dir is not None:
            parser.error("--lanes does not journal checkpoints; drop "
                         "--run-dir/--resume")
    if args.epoch is not None and args.controller is None \
            and args.policy != "lfoc":
        parser.error("--epoch only applies when a QoS controller runs; "
                     "add --controller or --policy lfoc")
    try:
        parallel.configure(jobs=args.jobs, cache=not args.no_cache,
                           progress=progress, telemetry=telemetry,
                           metrics=metrics_window, live=live,
                           resilience=resilience,
                           kernel=args.kernel or "event",
                           lanes=args.lanes, cpi_stacks=args.cpi_stacks,
                           spans=tracer,
                           requests=args.requests is not None,
                           slo=slo_rules,
                           policy=args.policy, controller=args.controller,
                           epoch=args.epoch)
    except ValueError as exc:
        parser.error(str(exc))

    if args.list or not args.experiments:
        for exp_id in sorted(REGISTRY):
            print(exp_id)
        if server is not None:
            server.stop()
        return 0

    requested = args.experiments
    if requested == ["all"]:
        requested = sorted(REGISTRY)

    def salvage_partial_metrics(exp_id: str) -> None:
        """Write whatever per-point metrics survived an interrupted or
        partially-excluded run (``<exp_id>.metrics.partial.json``)."""
        if args.metrics is None:
            return
        snapshots = parallel.drain_metrics()
        if not snapshots and run_dir is not None:
            # The fleet keeps finished results as sidecars in the run
            # directory even when the batch itself never returned.
            from repro.resilience import replay as replay_journal
            from repro.resilience.journal import load_result, result_path
            state = replay_journal(run_dir)
            for rec in sorted(state.records.values(), key=lambda r: r.index):
                if rec.status != "done":
                    continue
                prior = load_result(result_path(run_dir, rec.key))
                if prior is not None and prior.metrics is not None:
                    snapshots.append(prior.metrics)
        if not snapshots:
            return
        import json
        from repro.telemetry import merge_attribution, merge_snapshots
        aggregate = merge_snapshots(snapshots)
        aggregate["attribution"] = merge_attribution(
            [snap.get("attribution") for snap in snapshots]
        )
        path = Path(args.metrics) / f"{exp_id}.metrics.partial.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(aggregate, indent=2) + "\n")
        print(f"partial metrics ({len(snapshots)} points) -> {path}",
              file=sys.stderr)

    def bail(exp_id: str, reason: str, code: int) -> int:
        salvage_partial_metrics(exp_id)
        print(f"\n{reason}", file=sys.stderr)
        command = resume_command()
        if command is not None:
            print(f"resume with:\n  {command}", file=sys.stderr)
        else:
            print("no run directory was configured, so completed points "
                  "were not journaled; re-run with --run-dir DIR to make "
                  "runs resumable", file=sys.stderr)
        if server is not None:
            server.stop()
        return code

    profiler = None
    if args.profile:
        from repro.common.profiling import start_profile
        profiler = start_profile()
    manifest_extra = {}
    if server is not None:
        manifest_extra["serve_url"] = server.url
    if args.requests is not None:
        # Provenance: the run was request-traced, under which SLO spec.
        manifest_extra["request_tracing"] = {
            "artifact_dir": args.requests,
            "slo": args.slo,
        }
    manifest_extra = manifest_extra or None
    try:
        for exp_id in requested:
            started = time.time()
            try:
                result = run_experiment(exp_id, fast=args.fast,
                                        manifest_extra=manifest_extra)
            except KeyboardInterrupt:
                return bail(exp_id, f"interrupted during {exp_id}.", 130)
            except PointsExcludedError as exc:
                return bail(exp_id, f"{exp_id} incomplete:\n{exc}", 3)
            if args.chart:
                from repro.experiments.charts import render_result
                print(render_result(result))
            else:
                print(result.format_table())
            print(f"({time.time() - started:.1f}s)\n")
            if args.manifest is not None and result.manifest is not None:
                path = Path(args.manifest) / f"{exp_id}.manifest.json"
                result.manifest.write(path)
                print(f"manifest -> {path}")
            if args.metrics is not None and result.metrics is not None:
                import json
                path = Path(args.metrics) / f"{exp_id}.metrics.json"
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(json.dumps(result.metrics, indent=2) + "\n")
                print(f"metrics -> {path} "
                      f"({result.metrics['points']} point snapshots)")
            if args.figures is not None and result.figure is not None:
                import json
                path = Path(args.figures) / f"{exp_id}.figure.json"
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(json.dumps(result.figure, indent=2) + "\n")
                print(f"figure -> {path}")
            if args.stacks is not None and result.metrics is not None:
                import json
                docs = [
                    snap["cpi_stacks"]
                    for snap in result.metrics["per_point"]
                    if snap.get("cpi_stacks")
                ]
                path = Path(args.stacks) / f"{exp_id}.stacks.json"
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(json.dumps(docs, indent=2) + "\n")
                print(f"stacks -> {path} ({len(docs)} point stacks)")
            if args.requests is not None and result.metrics is not None:
                import json
                docs = [
                    snap["requests"]
                    for snap in result.metrics["per_point"]
                    if snap.get("requests")
                ]
                path = Path(args.requests) / f"{exp_id}.requests.json"
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(json.dumps(docs, indent=2) + "\n")
                print(f"requests -> {path} ({len(docs)} point documents)")
            if args.history is not None and result.metrics is not None:
                from repro.telemetry.history import (
                    append_entry,
                    build_entry,
                    read_history,
                )
                if engine is not None:
                    # Bench regression is judged against the ledger as
                    # it stood BEFORE this run appends its own entry.
                    for payload in engine.evaluate_history(
                            exp_id, result.metrics,
                            read_history(args.history)):
                        if live is not None:
                            live.alert(payload)
                append_entry(args.history, build_entry(
                    exp_id,
                    manifest=(result.manifest.to_dict()
                              if result.manifest is not None else None),
                    metrics=result.metrics,
                ))
                print(f"history -> {args.history}")
            if args.report is not None and result.metrics is not None:
                from repro.telemetry import (
                    build_report_card,
                    merge_report_cards,
                    render_fleet_card,
                    write_report,
                )
                cards = [
                    build_report_card(
                        n_threads=snap["n_threads"],
                        arbiter=snap.get("arbiter", "?"),
                        metrics=snap,
                        attribution=snap.get("attribution"),
                        run_label=f"{exp_id}[{index}]",
                    )
                    for index, snap in enumerate(
                        result.metrics["per_point"])
                ]
                fleet = merge_report_cards(cards, label=exp_id)
                from repro.telemetry.cycles import decompose_slowdown
                decomposition = decompose_slowdown(
                    result.metrics["per_point"])
                if decomposition is not None:
                    fleet["slowdown_decomposition"] = decomposition
                print(render_fleet_card(fleet))
                path = Path(args.report) / f"{exp_id}.report.json"
                path.parent.mkdir(parents=True, exist_ok=True)
                write_report(fleet, str(path))
                print(f"report -> {path}\n")
    finally:
        if profiler is not None:
            from repro.common.profiling import finish_profile
            finish_profile(profiler, args.profile)
    summary = parallel.cache_summary()
    if summary:
        print(summary)
    if ring is not None:
        from repro.telemetry import write_chrome_trace
        count = write_chrome_trace(args.trace, ring)
        print(f"trace: {count} events -> {args.trace} "
              "(open in ui.perfetto.dev)")
    if tracer is not None:
        from repro.telemetry.spans import write_spans
        count = write_spans(args.spans, tracer)
        print(f"spans: {count} host-time spans -> {args.spans}")
    exit_code = 0
    if engine is not None:
        print(engine.summary_line())
        if args.alerts_out:
            from repro.telemetry.alerts import write_alerts
            write_alerts(args.alerts_out, engine)
            print(f"alerts -> {args.alerts_out}")
        if engine.page_fired:
            from repro.telemetry.alerts import PAGE_EXIT_CODE
            print("a page-severity alert fired; failing the run",
                  file=sys.stderr)
            exit_code = PAGE_EXIT_CODE
    if server is not None:
        if args.serve_linger > 0:
            print(f"telemetry server lingering {args.serve_linger:.0f}s "
                  f"at {server.url}", flush=True)
            time.sleep(args.serve_linger)
        server.stop()
    return exit_code


if __name__ == "__main__":
    sys.exit(main())

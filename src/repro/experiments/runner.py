"""Experiment CLI: ``python -m repro.experiments <id>... [--fast]``.

``<id>`` is any key printed by ``--list`` (table1, table2, fig4..fig10,
ablation-*), or ``all``.  ``--fast`` runs the reduced-fidelity variant
used by the test suite.  ``--jobs N`` fans independent simulation
points across N worker processes (0 = all CPUs); ``--no-cache``
disables the on-disk target-IPC cache (see
:mod:`repro.experiments.parallel`).  Observability (see
docs/ARCHITECTURE.md): ``--progress`` reports per-point completion and
ETA on stderr, ``--trace PATH`` captures the runner's orchestration
events as a Chrome/Perfetto trace, and ``--manifest [DIR]`` writes each
experiment's provenance record next to the output.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.experiments import parallel
from repro.experiments.base import REGISTRY, ExperimentResult
from repro.telemetry import RunManifest


def run_experiment(exp_id: str, fast: bool = False) -> ExperimentResult:
    """Run one experiment; the result carries a provenance manifest.

    When metrics collection is configured (``parallel.configure(...,
    metrics=window)``), the per-point snapshots the workers produced are
    drained here and attached as one aggregate on ``result.metrics``.
    """
    if exp_id not in REGISTRY:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(REGISTRY)}"
        )
    cache_before = dict(parallel.cache_stats)
    live = parallel.configured_live()
    if live is not None:
        live.begin_run(exp_id)
    started = time.monotonic()
    result = REGISTRY[exp_id](fast=fast)
    snapshots = parallel.drain_metrics()
    if snapshots:
        from repro.telemetry import merge_attribution, merge_snapshots
        aggregate = merge_snapshots(snapshots)
        aggregate["attribution"] = merge_attribution(
            [snap.get("attribution") for snap in snapshots]
        )
        result.metrics = aggregate
    if live is not None:
        # /snapshot now serves the exact aggregate written to disk.
        live.finish_run(result.metrics)
    result.manifest = RunManifest.collect(
        kernel="event",
        cache={
            key: parallel.cache_stats[key] - cache_before[key]
            for key in ("hits", "misses")
        },
        wall_time_s=round(time.monotonic() - started, 3),
        exp_id=exp_id,
        fast=fast,
    )
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids, or 'all'")
    parser.add_argument("--fast", action="store_true",
                        help="reduced-fidelity runs (tests/CI)")
    parser.add_argument("--chart", action="store_true",
                        help="render numeric columns as bar charts")
    parser.add_argument("--list", action="store_true",
                        help="list available experiment ids")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent simulation "
                             "points (0 = all CPUs; default 1, serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk target-IPC result cache")
    parser.add_argument("--progress", action="store_true",
                        help="report per-point progress and ETA on stderr")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write the runner's orchestration events as "
                             "Chrome/Perfetto trace_event JSON")
    parser.add_argument("--manifest", nargs="?", const=".", default=None,
                        metavar="DIR",
                        help="write <exp_id>.manifest.json per experiment "
                             "into DIR (default: current directory)")
    parser.add_argument("--metrics", nargs="?", const=".", default=None,
                        metavar="DIR",
                        help="collect per-point time-series metrics and "
                             "write <exp_id>.metrics.json into DIR "
                             "(default: current directory; disables the "
                             "result cache for observed points)")
    parser.add_argument("--report", nargs="?", const=".", default=None,
                        metavar="DIR",
                        help="print a QoS fleet report card per experiment "
                             "and write <exp_id>.report.json into DIR "
                             "(implies metrics collection)")
    parser.add_argument("--metrics-window", type=int, default=2_000,
                        metavar="CYCLES",
                        help="metrics aggregation window in cycles "
                             "(default 2000)")
    parser.add_argument("--serve", type=int, default=None, metavar="PORT",
                        help="serve live fleet telemetry over HTTP while "
                             "experiments run (/metrics /healthz /snapshot "
                             "/events; 0 = auto-assign a port, printed; "
                             "implies metrics collection)")
    parser.add_argument("--serve-linger", type=float, default=0.0,
                        metavar="SECONDS",
                        help="keep the telemetry server up this long after "
                             "the last experiment completes")
    parser.add_argument("--stale-after", type=float, default=30.0,
                        metavar="SECONDS",
                        help="worker heartbeat age after which /healthz "
                             "reports the run degraded (default 30)")
    args = parser.parse_args(argv)

    progress = ring = None
    telemetry = None
    if args.progress or args.serve is not None:
        from repro.telemetry import ProgressReporter
        progress = ProgressReporter()
    if args.trace:
        from repro.telemetry import RingBufferSink, TelemetryBus
        telemetry = TelemetryBus()
        ring = telemetry.attach(RingBufferSink())
    metrics_window = None
    if (args.metrics is not None or args.report is not None
            or args.serve is not None):
        metrics_window = args.metrics_window
    live = server = None
    if args.serve is not None:
        from repro.telemetry import LiveRun, TelemetryServer
        live = LiveRun(stale_after=args.stale_after, progress=progress)
        server = TelemetryServer(live, port=args.serve)
        server.start()
        print(f"serving telemetry on {server.url} "
              "(/metrics /healthz /snapshot /events)", flush=True)
    parallel.configure(jobs=args.jobs, cache=not args.no_cache,
                       progress=progress, telemetry=telemetry,
                       metrics=metrics_window, live=live)

    if args.list or not args.experiments:
        for exp_id in sorted(REGISTRY):
            print(exp_id)
        if server is not None:
            server.stop()
        return 0

    requested = args.experiments
    if requested == ["all"]:
        requested = sorted(REGISTRY)

    for exp_id in requested:
        started = time.time()
        result = run_experiment(exp_id, fast=args.fast)
        if args.chart:
            from repro.experiments.charts import render_result
            print(render_result(result))
        else:
            print(result.format_table())
        print(f"({time.time() - started:.1f}s)\n")
        if args.manifest is not None and result.manifest is not None:
            path = Path(args.manifest) / f"{exp_id}.manifest.json"
            result.manifest.write(path)
            print(f"manifest -> {path}")
        if args.metrics is not None and result.metrics is not None:
            import json
            path = Path(args.metrics) / f"{exp_id}.metrics.json"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(result.metrics, indent=2) + "\n")
            print(f"metrics -> {path} "
                  f"({result.metrics['points']} point snapshots)")
        if args.report is not None and result.metrics is not None:
            from repro.telemetry import (
                build_report_card,
                merge_report_cards,
                render_fleet_card,
                write_report,
            )
            cards = [
                build_report_card(
                    n_threads=snap["n_threads"],
                    arbiter=snap.get("arbiter", "?"),
                    metrics=snap,
                    attribution=snap.get("attribution"),
                    run_label=f"{exp_id}[{index}]",
                )
                for index, snap in enumerate(result.metrics["per_point"])
            ]
            fleet = merge_report_cards(cards, label=exp_id)
            print(render_fleet_card(fleet))
            path = Path(args.report) / f"{exp_id}.report.json"
            path.parent.mkdir(parents=True, exist_ok=True)
            write_report(fleet, str(path))
            print(f"report -> {path}\n")
    summary = parallel.cache_summary()
    if summary:
        print(summary)
    if ring is not None:
        from repro.telemetry import write_chrome_trace
        count = write_chrome_trace(args.trace, ring)
        print(f"trace: {count} events -> {args.trace} "
              "(open in ui.perfetto.dev)")
    if server is not None:
        if args.serve_linger > 0:
            print(f"telemetry server lingering {args.serve_linger:.0f}s "
                  f"at {server.url}", flush=True)
            time.sleep(args.serve_linger)
        server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())

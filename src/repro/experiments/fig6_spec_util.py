"""Figure 6: L2 cache utilization of the SPEC stand-in benchmarks.

Each benchmark runs alone on the 2-bank baseline; the figure's series
are data-array, data-bus, and tag-array utilization, ordered by
data-array utilization (the paper's proxy for thread aggressiveness).
Shape targets: a wide spread averaging ~26 % of a bank's bandwidth;
equake/swim show tag > data (miss-dominated, write-light traffic).
"""

from __future__ import annotations

from repro.common.config import VPCAllocation, baseline_config
from repro.experiments.base import ExperimentResult, cycle_budget, register
from repro.experiments.parallel import SimPoint, run_points
from repro.system.simulator import SimulationResult
from repro.workloads.profiles import SPEC_ORDER

FAST_SUBSET = ("art", "mcf", "equake", "sixtrack")


def solo_point(name: str, warmup: int, measure: int) -> SimPoint:
    """One benchmark alone on the baseline uniprocessor configuration."""
    config = baseline_config(n_threads=1, arbiter="row-fcfs",
                             vpc=VPCAllocation([1.0], [1.0]))
    return SimPoint(config=config, traces=(("spec", name),),
                    warmup=warmup, measure=measure)


def solo_run(name: str, warmup: int, measure: int) -> SimulationResult:
    """Single-point convenience wrapper around :func:`solo_point`."""
    return run_points([solo_point(name, warmup, measure)])[0]


@register("fig6")
def run(fast: bool = False) -> ExperimentResult:
    warmup, measure = cycle_budget(fast, warmup=30_000, measure=30_000)
    names = FAST_SUBSET if fast else SPEC_ORDER
    points = [solo_point(name, warmup, measure) for name in names]
    rows = []
    for name, result in zip(names, run_points(points)):
        rows.append((
            name,
            result.utilizations["data"],
            result.utilizations["bus"],
            result.utilizations["tag"],
            result.ipcs[0],
        ))
    mean_data = sum(row[1] for row in rows) / len(rows)
    return ExperimentResult(
        exp_id="fig6",
        title="L2 cache utilization of the SPEC benchmarks (solo, 2 banks)",
        headers=["benchmark", "data_array", "data_bus", "tag_array", "ipc"],
        rows=rows,
        notes=[
            f"mean data-array utilization {mean_data:.3f} "
            "(paper: a single thread consumes ~26% of bank bandwidth)",
            "benchmarks ordered by data-array utilization, as in the paper",
        ],
    )

"""Figure 6: L2 cache utilization of the SPEC stand-in benchmarks.

Each benchmark runs alone on the 2-bank baseline; the figure's series
are data-array, data-bus, and tag-array utilization, ordered by
data-array utilization (the paper's proxy for thread aggressiveness).
Shape targets: a wide spread averaging ~26 % of a bank's bandwidth;
equake/swim show tag > data (miss-dominated, write-light traffic).
"""

from __future__ import annotations

from repro.common.config import VPCAllocation, baseline_config
from repro.experiments.base import ExperimentResult, cycle_budget, register
from repro.system.cmp import CMPSystem
from repro.system.simulator import SimulationResult, run_simulation
from repro.workloads.profiles import SPEC_ORDER, spec_trace

FAST_SUBSET = ("art", "mcf", "equake", "sixtrack")


def solo_run(name: str, warmup: int, measure: int) -> SimulationResult:
    """One benchmark alone on the baseline uniprocessor configuration."""
    config = baseline_config(n_threads=1, arbiter="row-fcfs",
                             vpc=VPCAllocation([1.0], [1.0]))
    system = CMPSystem(config, [spec_trace(name, 0)])
    return run_simulation(system, warmup=warmup, measure=measure)


@register("fig6")
def run(fast: bool = False) -> ExperimentResult:
    warmup, measure = cycle_budget(fast, warmup=30_000, measure=30_000)
    names = FAST_SUBSET if fast else SPEC_ORDER
    rows = []
    for name in names:
        result = solo_run(name, warmup, measure)
        rows.append((
            name,
            result.utilizations["data"],
            result.utilizations["bus"],
            result.utilizations["tag"],
            result.ipcs[0],
        ))
    mean_data = sum(row[1] for row in rows) / len(rows)
    return ExperimentResult(
        exp_id="fig6",
        title="L2 cache utilization of the SPEC benchmarks (solo, 2 banks)",
        headers=["benchmark", "data_array", "data_bus", "tag_array", "ipc"],
        rows=rows,
        notes=[
            f"mean data-array utilization {mean_data:.3f} "
            "(paper: a single thread consumes ~26% of bank bandwidth)",
            "benchmarks ordered by data-array utilization, as in the paper",
        ],
    )

"""Table 2: microbenchmark self-check (address-stream characterization)."""

from __future__ import annotations

import itertools

from repro.cpu.isa import LOAD, NONMEM, STORE
from repro.experiments.base import ExperimentResult, register
from repro.workloads.microbench import ARRAY_BYTES, ROWS, ROW_BYTES, MICROBENCHMARKS


@register("table2")
def run(fast: bool = False) -> ExperimentResult:
    sample = 2_000 if fast else 10_000
    rows = []
    for name, factory in MICROBENCHMARKS.items():
        items = list(itertools.islice(factory(0), sample))
        mem_kind = STORE if name == "stores" else LOAD
        mem_ops = [item for item in items if item[0] == mem_kind]
        overhead = sum(item[1] for item in items if item[0] == NONMEM)
        lines = {item[1] // ROW_BYTES for item in mem_ops}
        rows.append((
            name,
            ARRAY_BYTES // 1024,
            ROW_BYTES,
            len(lines) if len(lines) < ROWS else ROWS,
            len(mem_ops),
            round(len(mem_ops) / (len(mem_ops) + overhead), 3),
        ))
    return ExperimentResult(
        exp_id="table2",
        title="Microbenchmarks (Table 2): 32KB array, 64B rows, unrolled x4",
        headers=["benchmark", "array_kb", "row_bytes", "distinct_lines",
                 "mem_ops_sampled", "mem_op_fraction"],
        rows=rows,
        notes=[
            "each benchmark streams the first word of every 64B row of a "
            "32KB array (2x the L1), creating a constant stream of L2 hits",
        ],
    )

"""Terminal bar charts for experiment results.

The paper's artifacts are figures; ``python -m repro.experiments fig6
--chart`` renders each numeric column of the regenerated table as a
horizontal bar chart, so the *shape* (the thing EXPERIMENTS.md compares)
is visible at a glance without plotting dependencies.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.experiments.base import ExperimentResult

BAR = "#"
DEFAULT_WIDTH = 48


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    title: str,
    width: int = DEFAULT_WIDTH,
    max_value: Optional[float] = None,
) -> str:
    """One horizontal bar per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values differ in length")
    if width < 1:
        raise ValueError("width must be >= 1")
    finite = [v for v in values if isinstance(v, (int, float)) and math.isfinite(v)]
    scale = max_value if max_value is not None else max(finite, default=0.0)
    label_width = max((len(str(label)) for label in labels), default=0)
    lines = [title]
    for label, value in zip(labels, values):
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            lines.append(f"  {str(label):>{label_width}}        (n/a)")
            continue
        filled = 0 if scale <= 0 else round(width * max(value, 0.0) / scale)
        filled = min(filled, width)
        lines.append(
            f"  {str(label):>{label_width}} {value:8.3f} {BAR * filled}"
        )
    return "\n".join(lines)


def numeric_columns(result: ExperimentResult) -> List[str]:
    """Headers whose column holds at least one finite number."""
    columns = []
    for header in result.headers[1:]:
        values = result.column(header)
        if any(isinstance(v, (int, float)) and not isinstance(v, bool)
               and math.isfinite(v) for v in values):
            columns.append(header)
    return columns


def render_result(result: ExperimentResult, width: int = DEFAULT_WIDTH) -> str:
    """Chart every numeric column against the first (label) column."""
    labels = [str(row[0]) for row in result.rows]
    charts = [f"== {result.exp_id}: {result.title} =="]
    for header in numeric_columns(result):
        charts.append(render_bars(labels, result.column(header),
                                  title=f"[{header}]", width=width))
    return "\n\n".join(charts)

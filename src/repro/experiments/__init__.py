"""One module per paper table/figure; see DESIGN.md's experiment index.

Importing this package populates the experiment registry; run any
experiment with ``python -m repro.experiments <id>`` or programmatically
via :func:`repro.experiments.run_experiment`.
"""

# Import for registration side effects (each module registers itself).
from repro.experiments import (  # noqa: F401
    ablations,
    fig4_timing,
    fig5_microbench_util,
    fig6_spec_util,
    fig7_writes,
    fig8_loads_stores,
    fig9_subject_background,
    fig10_heterogeneous,
    policy_frontier,
    sweep_designspace,
    sweep_smt,
    table1_config,
    table2_microbench,
)
from repro.experiments.base import REGISTRY, ExperimentResult
from repro.experiments.charts import render_bars, render_result
from repro.experiments.runner import main, run_experiment

__all__ = ["ExperimentResult", "REGISTRY", "main", "render_bars", "render_result", "run_experiment"]

"""Figure 9: a SPEC subject thread against three Stores background threads.

The subject benchmark runs on processor 1; processors 2-4 run the
Stores microbenchmark (aggressive, possibly malicious background
traffic).  The subject gets phi in {.25, .5, 1.0} of the cache
bandwidth (leftover split among the backgrounds) and beta = .25 of the
ways; its IPC is normalized to its private-machine target at phi = 1
(the paper's normalization).

A conventional FCFS row is included for reference — this is where the
paper's "performance degradation of up to 87 %" shows up.

Paper shape: under VPC the subject's normalized IPC tracks its
allocation and always meets its target; under FCFS the backgrounds
crush it regardless.
"""

from __future__ import annotations

from repro.common.config import VPCAllocation, baseline_config, private_equivalent
from repro.experiments.base import ExperimentResult, cycle_budget, register
from repro.experiments.parallel import SimPoint, run_points
from repro.workloads.profiles import SPEC_ORDER

SUBJECT_SHARES = (0.25, 0.5, 1.0)
FAST_SUBSET = ("art", "mcf", "equake", "gzip")


def _shared_point(name: str, arbiter: str, subject_share: float,
                  warmup: int, measure: int) -> SimPoint:
    background = (1.0 - subject_share) / 3.0
    vpc = VPCAllocation(
        [subject_share, background, background, background],
        [0.25, 0.25, 0.25, 0.25],
    )
    config = baseline_config(n_threads=4, arbiter=arbiter, vpc=vpc)
    traces = (("spec", name), ("stores",), ("stores",), ("stores",))
    return SimPoint(config=config, traces=traces,
                    warmup=warmup, measure=measure)


def _phi1_target_point(name: str, warmup: int, measure: int) -> SimPoint:
    config = baseline_config(n_threads=4)
    private = private_equivalent(config, phi=1.0, beta=0.25)
    return SimPoint(config=private, traces=(("spec", name),),
                    warmup=warmup, measure=measure, cacheable=True)


@register("fig9")
def run(fast: bool = False) -> ExperimentResult:
    warmup, measure = cycle_budget(fast, warmup=35_000, measure=25_000)
    names = FAST_SUBSET if fast else SPEC_ORDER
    shares = (0.5,) if fast else SUBJECT_SHARES
    # Per benchmark: the private phi=1 target, the FCFS reference, and
    # one VPC run per subject share — all independent points.
    points = []
    for name in names:
        points.append(_phi1_target_point(name, warmup, measure))
        points.append(_shared_point(name, "fcfs", 0.25, warmup, measure))
        for share in shares:
            points.append(_shared_point(name, "vpc", share, warmup, measure))
    results = iter(run_points(points))
    rows = []
    for name in names:
        target = next(results).ipcs[0]
        fcfs = next(results)
        row = [name, target, fcfs.ipcs[0] / target if target else 0.0]
        for _ in shares:
            result = next(results)
            row.append(result.ipcs[0] / target if target else 0.0)
        rows.append(tuple(row))
    headers = ["benchmark", "phi1_target_ipc", "fcfs_norm"] + [
        f"vpc{int(share * 100)}_norm" for share in shares
    ]
    return ExperimentResult(
        exp_id="fig9",
        title="SPEC subject vs. three Stores backgrounds (IPC normalized "
              "to the phi=1 private target)",
        headers=headers,
        rows=rows,
        notes=[
            "fcfs_norm: conventional arbiter, subject unprotected "
            "(paper: up to 87% degradation)",
            "vpcX_norm: subject allocated X% of cache bandwidth; "
            "normalized IPC should be ~X/100 or better",
        ],
    )

"""Design-space sweep: bank count vs. thread count (Section 5.2).

The paper's bank-count choice is an explicit engineering argument:
banking is expensive ("cache banking does not scale well"), a single
thread averages ~26 % of a bank's bandwidth, so two banks serve the
common 1-2-thread case while "on a four thread workload, the cache
approaches full utilization" — and the VPC arbiters let designers
provision for the common case rather than the worst case.

This sweep regenerates that argument: aggregate IPC and data-array
utilization for 1/2/4 SPEC threads on 2/4/8-bank caches, under VPC
arbitration with equal shares.
"""

from __future__ import annotations

from repro.common.config import VPCAllocation, baseline_config
from repro.experiments.base import ExperimentResult, cycle_budget, register
from repro.experiments.parallel import SimPoint, run_points

# A demand ladder: each added thread is a real mid-to-high consumer.
THREAD_LADDER = ("art", "mesa", "vpr", "crafty")


@register("sweep-designspace")
def run(fast: bool = False) -> ExperimentResult:
    warmup, measure = cycle_budget(fast, warmup=30_000, measure=25_000)
    thread_counts = (1, 4) if fast else (1, 2, 4)
    bank_counts = (2, 4) if fast else (2, 4, 8)
    labels = []
    points = []
    for n_threads in thread_counts:
        benchmarks = THREAD_LADDER[:n_threads]
        for banks in bank_counts:
            config = baseline_config(
                n_threads=n_threads, banks=banks, arbiter="vpc",
                vpc=VPCAllocation.equal(n_threads),
            )
            labels.append(f"{n_threads}T/{banks}B")
            points.append(SimPoint(
                config=config,
                traces=tuple(("spec", name) for name in benchmarks),
                warmup=warmup, measure=measure,
            ))
    rows = []
    for label, result in zip(labels, run_points(points)):
        rows.append((
            label,
            sum(result.ipcs),
            result.utilizations["data"],
            result.utilizations["tag"],
        ))
    return ExperimentResult(
        exp_id="sweep-designspace",
        title="Bank-count design space: aggregate IPC and utilization",
        headers=["config", "aggregate_ipc", "data_util", "tag_util"],
        rows=rows,
        notes=[
            "Section 5.2: one thread needs ~a quarter of a bank; two banks "
            "cover 1-2 threads; four threads approach full utilization — "
            "more banks buy throughput only under multi-thread load",
        ],
    )

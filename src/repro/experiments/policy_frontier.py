"""Fairness/throughput frontier: FCFS vs. static VPC vs. dynamic QoS.

The paper evaluates VPC with *static* equal shares (Figure 10); the QoS
control plane (:mod:`repro.qos`) retunes shares online.  This
experiment places the policy families on one fairness/throughput
frontier, under phase-changing fig10-style mixes where a static
allocation cannot be right the whole run:

* ``fcfs`` — the conventional cache: FCFS arbiters, shared LRU;
* ``vpc`` — the paper's static VPC with equal phi/beta;
* ``lfoc`` — VPC plus the LFOC-style clustering controller
  (:class:`~repro.qos.LFOCController`);
* ``dynamic`` — VPC plus the fairness feedback controller
  (:class:`~repro.qos.FairnessController`) steering toward equalized
  slowdowns against the solo targets.

Per mix and policy the figure reports the Jain index of normalized
IPCs (fairness), the aggregate raw IPC (throughput), and the harmonic
mean / minimum of normalized IPCs (the paper's Figure-10 metrics).
The machine-readable document (``repro.policy-frontier/1``, written by
the runner's ``--figures``) is validated by
``repro.telemetry.validate`` and asserted on by CI's policy-smoke job:
the dynamic policies must beat FCFS on Jain without giving up more
than a few percent of static VPC's throughput.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.config import VPCAllocation, baseline_config, private_equivalent
from repro.common.stats import harmonic_mean, jain_index
from repro.experiments.base import ExperimentResult, cycle_budget, register
from repro.experiments.parallel import SimPoint, run_points
from repro.system.simulator import SimulationResult
from repro.workloads.profiles import PHASED_MIXES, PHASED_PROFILES

#: Schema tag on the figure document (repro.telemetry.validate).
FRONTIER_SCHEMA = "repro.policy-frontier/1"

#: Policy families on the frontier, in reporting order.
POLICY_FAMILIES = ("fcfs", "vpc", "lfoc", "dynamic")

FAST_MIXES = ("pmix1",)


def _workload_spec(name: str) -> Tuple:
    """Mix entries name either a phased schedule or a steady profile."""
    return ("phased", name) if name in PHASED_PROFILES else ("spec", name)


def _target_point(name: str, warmup: int, measure: int) -> SimPoint:
    private = private_equivalent(baseline_config(n_threads=4),
                                 phi=0.25, beta=0.25)
    return SimPoint(config=private, traces=(_workload_spec(name),),
                    warmup=warmup, measure=measure, cacheable=True)


def _mix_point(
    workloads: List[str],
    policy: str,
    warmup: int,
    measure: int,
    epoch: int,
    targets: Tuple[float, ...],
) -> SimPoint:
    traces = tuple(_workload_spec(name) for name in workloads)
    if policy == "fcfs":
        config = baseline_config(n_threads=4, arbiter="fcfs")
        return SimPoint(config=config, traces=traces, warmup=warmup,
                        measure=measure, capacity_policy="lru")
    config = baseline_config(n_threads=4, arbiter="vpc",
                             vpc=VPCAllocation.equal(4))
    controller = {"vpc": None, "lfoc": "lfoc", "dynamic": "fairness"}[policy]
    return SimPoint(
        config=config, traces=traces, warmup=warmup, measure=measure,
        capacity_policy="vpc", controller=controller, epoch_cycles=epoch,
        # Only the fairness controller steers against slowdown targets;
        # LFOC classifies from raw signals alone.
        controller_targets=targets if controller == "fairness" else None,
    )


def _policy_metrics(result: SimulationResult,
                    targets: List[float]) -> Dict:
    normalized = [
        ipc / target if target > 0 else 0.0
        for ipc, target in zip(result.ipcs, targets)
    ]
    return {
        "jain": jain_index(normalized),
        "aggregate_ipc": sum(result.ipcs),
        "hmean": harmonic_mean(normalized) if all(normalized) else 0.0,
        "min": min(normalized),
        "normalized_ipcs": normalized,
        "epochs": (result.qos or {}).get("epochs", 0),
    }


@register("policy-frontier")
def run(fast: bool = False) -> ExperimentResult:
    warmup, measure = cycle_budget(fast, warmup=20_000, measure=60_000)
    epoch = 5_000
    mixes = FAST_MIXES if fast else tuple(PHASED_MIXES)

    # Batch 1: solo private-equivalent targets per distinct workload.
    unique: List[str] = []
    for mix_name in mixes:
        for name in PHASED_MIXES[mix_name]:
            if name not in unique:
                unique.append(name)
    target_results = run_points(
        [_target_point(name, warmup, measure) for name in unique])
    target_ipc = {
        name: result.ipcs[0]
        for name, result in zip(unique, target_results)
    }

    # Batch 2: each mix under every policy family (targets feed the
    # dynamic controller, so this batch depends on batch 1).
    points = []
    for mix_name in mixes:
        workloads = PHASED_MIXES[mix_name]
        targets = tuple(target_ipc[name] for name in workloads)
        for policy in POLICY_FAMILIES:
            points.append(_mix_point(workloads, policy, warmup, measure,
                                     epoch, targets))
    results = iter(run_points(points))

    rows = []
    figure_mixes = []
    sums = {policy: {"jain": 0.0, "aggregate_ipc": 0.0,
                     "hmean": 0.0, "min": 0.0}
            for policy in POLICY_FAMILIES}
    for mix_name in mixes:
        workloads = PHASED_MIXES[mix_name]
        targets = [target_ipc[name] for name in workloads]
        per_policy = {
            policy: _policy_metrics(next(results), targets)
            for policy in POLICY_FAMILIES
        }
        for policy in POLICY_FAMILIES:
            for key in sums[policy]:
                sums[policy][key] += per_policy[policy][key]
        figure_mixes.append({
            "mix": mix_name,
            "workloads": list(workloads),
            "targets": targets,
            "points": per_policy,
        })
        row = [f"{mix_name}({'+'.join(workloads)})"]
        for policy in POLICY_FAMILIES:
            row.append(per_policy[policy]["jain"])
        for policy in POLICY_FAMILIES:
            row.append(per_policy[policy]["aggregate_ipc"])
        rows.append(tuple(row))
    aggregate = {
        policy: {key: value / len(mixes)
                 for key, value in sums[policy].items()}
        for policy in POLICY_FAMILIES
    }

    figure = {
        "schema": FRONTIER_SCHEMA,
        "policies": list(POLICY_FAMILIES),
        "epoch_cycles": epoch,
        "warmup": warmup,
        "measure": measure,
        "mixes": figure_mixes,
        "aggregate": aggregate,
    }
    headers = (["mix"]
               + [f"{policy}_jain" for policy in POLICY_FAMILIES]
               + [f"{policy}_ipc" for policy in POLICY_FAMILIES])
    return ExperimentResult(
        exp_id="policy-frontier",
        title="Fairness/throughput frontier under phase-changing mixes: "
              "FCFS vs. static VPC vs. LFOC vs. dynamic fairness control",
        headers=headers,
        rows=rows,
        notes=[
            "jain over IPCs normalized to private-machine targets at "
            "phi=beta=.25; ipc is the aggregate raw IPC of the mix",
            "lfoc/dynamic retune shares through the VPC control "
            f"registers every {epoch} cycles",
        ],
        figure=figure,
    )

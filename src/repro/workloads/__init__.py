"""Workload generators: Table-2 microbenchmarks and SPEC stand-ins."""

from repro.workloads.microbench import (
    ARRAY_BYTES,
    MICROBENCHMARKS,
    ROW_BYTES,
    loads_trace,
    stores_trace,
    thread_base,
)
from repro.workloads.profiles import (
    HETEROGENEOUS_MIXES,
    SPEC_ORDER,
    SPEC_PROFILES,
    spec_trace,
)
from repro.workloads.synthetic import WorkloadProfile, synthetic_trace
from repro.workloads.tracefile import (
    read_trace,
    save_trace,
    trace_from_file,
)

__all__ = [
    "ARRAY_BYTES",
    "HETEROGENEOUS_MIXES",
    "MICROBENCHMARKS",
    "ROW_BYTES",
    "SPEC_ORDER",
    "SPEC_PROFILES",
    "WorkloadProfile",
    "read_trace",
    "save_trace",
    "trace_from_file",
    "loads_trace",
    "spec_trace",
    "stores_trace",
    "synthetic_trace",
    "thread_base",
]

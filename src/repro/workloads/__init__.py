"""Workload generators: Table-2 microbenchmarks and SPEC stand-ins."""

from repro.workloads.microbench import (
    ARRAY_BYTES,
    MICROBENCHMARKS,
    ROW_BYTES,
    loads_trace,
    stores_trace,
    thread_base,
)
from repro.workloads.phased import PhasedProfile, parse_phased, phased_trace
from repro.workloads.profiles import (
    HETEROGENEOUS_MIXES,
    PHASED_MIXES,
    PHASED_PROFILES,
    SPEC_ORDER,
    SPEC_PROFILES,
    phased_profile_trace,
    spec_trace,
)
from repro.workloads.synthetic import WorkloadProfile, synthetic_trace
from repro.workloads.tracefile import (
    read_trace,
    save_trace,
    trace_from_file,
)


def build_trace(spec, thread_id: int):
    """Realize a declarative trace spec for one hardware thread.

    The spec vocabulary is shared by :class:`repro.experiments.parallel
    .SimPoint` and the resilience checkpoints
    (:mod:`repro.resilience.snapshot`), which rebuild and fast-forward
    traces from exactly these tuples:

    * ``("loads",)`` / ``("stores",)`` — the Table-2 microbenchmarks;
    * ``("micro", name)`` — any entry of :data:`MICROBENCHMARKS`;
    * ``("spec", name)`` — a SPEC stand-in profile;
    * ``("synthetic", profile)`` — an explicit :class:`WorkloadProfile`;
    * ``("phased", name)`` — a named ``PHASED_PROFILES`` schedule;
    * ``("phased-inline", text)`` — an inline phased schedule in the
      CLI's ``bench+bench[@instructions]`` form;
    * ``("tracefile", path)`` — a segment-trace file on disk.
    """
    kind = spec[0]
    if kind == "loads":
        return loads_trace(thread_id)
    if kind == "stores":
        return stores_trace(thread_id)
    if kind == "micro":
        return MICROBENCHMARKS[spec[1]](thread_id)
    if kind == "spec":
        return spec_trace(spec[1], thread_id)
    if kind == "synthetic":
        return synthetic_trace(spec[1], thread_id)
    if kind == "phased":
        return phased_profile_trace(spec[1], thread_id)
    if kind == "phased-inline":
        return phased_trace(parse_phased(spec[1]), thread_id)
    if kind == "tracefile":
        return trace_from_file(spec[1])
    raise ValueError(f"unknown trace spec {spec!r}")


__all__ = [
    "ARRAY_BYTES",
    "HETEROGENEOUS_MIXES",
    "MICROBENCHMARKS",
    "PHASED_MIXES",
    "PHASED_PROFILES",
    "PhasedProfile",
    "ROW_BYTES",
    "SPEC_ORDER",
    "SPEC_PROFILES",
    "WorkloadProfile",
    "build_trace",
    "parse_phased",
    "phased_profile_trace",
    "phased_trace",
    "read_trace",
    "save_trace",
    "trace_from_file",
    "loads_trace",
    "spec_trace",
    "stores_trace",
    "synthetic_trace",
    "thread_base",
]

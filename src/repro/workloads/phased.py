"""Phase-changing synthetic workloads (QoS control-plane stimuli).

Real programs move between execution phases — a streaming scan, then a
pointer-chasing core loop, then compute on a hot working set — and any
online classifier worth its name must re-label a thread when its phase
changes.  A :class:`PhasedProfile` rotates through a cycle of SPEC
stand-in profiles, switching every ``phase_instructions`` committed
instructions, so one thread's L2-level signal (miss rate, intensity,
reuse) shifts mid-run while staying fully deterministic.

Each phase keeps a *persistent* per-profile generator: returning to a
phase resumes its address pointers rather than restarting them, the
same way a program returning to a loop nest finds its data structures
where it left them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.cpu.isa import NONMEM, TraceItem
from repro.workloads.synthetic import synthetic_trace


@dataclass(frozen=True)
class PhasedProfile:
    """A cyclic schedule of SPEC stand-in phases for one thread.

    ``phases`` names entries of ``SPEC_PROFILES``; ``phase_instructions``
    is the committed-instruction budget of each phase (phase boundaries
    land on trace-item granularity, so a phase can overshoot its budget
    by at most one non-memory run).  Frozen and repr-stable, so phased
    trace specs are picklable and content-addressable like every other
    spec kind.
    """

    name: str
    phases: Tuple[str, ...]
    phase_instructions: int = 12_000

    def validate(self) -> "PhasedProfile":
        from repro.workloads.profiles import SPEC_PROFILES
        if len(self.phases) < 2:
            raise ValueError(f"{self.name}: a phased profile needs >= 2 phases")
        for phase in self.phases:
            if phase not in SPEC_PROFILES:
                raise ValueError(
                    f"{self.name}: unknown phase profile {phase!r}"
                )
        if self.phase_instructions < 1:
            raise ValueError(f"{self.name}: phase_instructions must be >= 1")
        return self


def parse_phased(text: str) -> PhasedProfile:
    """Parse the CLI's inline form ``bench+bench[+...][@instructions]``.

    Example: ``art+sixtrack@8000`` alternates art and sixtrack every
    8000 committed instructions.
    """
    spec = text
    instructions = 12_000
    if "@" in spec:
        spec, _, tail = spec.partition("@")
        try:
            instructions = int(tail)
        except ValueError:
            raise ValueError(f"bad phase length in {text!r}") from None
    names = tuple(part for part in spec.split("+") if part)
    return PhasedProfile(
        name=spec, phases=names, phase_instructions=instructions
    ).validate()


def phased_trace(
    profile: PhasedProfile, thread_id: int = 0, seed: int = 12345
) -> Iterator[TraceItem]:
    """Infinite phase-rotating trace realizing ``profile``."""
    from repro.workloads.profiles import SPEC_PROFILES
    profile.validate()
    # One persistent generator per schedule slot; distinct seeds keep
    # repeated occurrences of the same benchmark decorrelated.
    generators = [
        synthetic_trace(SPEC_PROFILES[name], thread_id=thread_id,
                        seed=seed + 97 * slot)
        for slot, name in enumerate(profile.phases)
    ]
    slot = 0
    while True:
        budget = profile.phase_instructions
        step = generators[slot].__next__
        while budget > 0:
            item = step()
            budget -= item[1] if item[0] == NONMEM else 1
            yield item
        slot = (slot + 1) % len(generators)

"""Trace-file I/O: persist and replay segment traces.

A downstream user with real program traces (e.g. converted SPEC or
production traces) can run them through the simulator without touching
the synthetic generators.  The format is deliberately trivial — one
record per line, comments with ``#``:

    N <count>          run of non-memory instructions
    L <addr> [D]       load (hex or decimal address; ``D`` = dependent)
    S <addr>           store

Files replay either once or in a loop (infinite traces are what the
steady-state experiments expect).
"""

from __future__ import annotations

import itertools
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.cpu.isa import LOAD, NONMEM, STORE, TraceItem, load, nonmem, store


def _parse_addr(token: str) -> int:
    return int(token, 16) if token.lower().startswith("0x") else int(token)


def parse_line(line: str, lineno: int = 0) -> TraceItem:
    """Parse one record; raises ValueError with the line number on junk."""
    fields = line.split()
    kind = fields[0].upper()
    try:
        if kind == "N" and len(fields) == 2:
            return nonmem(int(fields[1]))
        if kind == "L" and len(fields) in (2, 3):
            dependent = len(fields) == 3 and fields[2].upper() == "D"
            if len(fields) == 3 and not dependent:
                raise ValueError(f"bad load flag {fields[2]!r}")
            return load(_parse_addr(fields[1]), dependent)
        if kind == "S" and len(fields) == 2:
            return store(_parse_addr(fields[1]))
    except ValueError as exc:
        raise ValueError(f"line {lineno}: {exc}") from exc
    raise ValueError(f"line {lineno}: unrecognized record {line!r}")


def format_item(item: TraceItem) -> str:
    kind = item[0]
    if kind == NONMEM:
        return f"N {item[1]}"
    if kind == LOAD:
        return f"L {item[1]:#x} D" if item[2] else f"L {item[1]:#x}"
    if kind == STORE:
        return f"S {item[1]:#x}"
    raise ValueError(f"unknown trace item {item}")


def save_trace(
    items: Iterable[TraceItem],
    path: Union[str, Path],
    limit: int = 0,
) -> int:
    """Write ``items`` (truncated to ``limit`` records when > 0).

    Returns the number of records written.  Safe to call with an
    infinite generator as long as ``limit`` is positive.
    """
    if limit < 0:
        raise ValueError("limit must be >= 0")
    source = itertools.islice(items, limit) if limit else items
    written = 0
    with open(path, "w") as handle:
        handle.write("# repro segment trace v1\n")
        for item in source:
            handle.write(format_item(item) + "\n")
            written += 1
    return written


def read_trace(path: Union[str, Path]) -> List[TraceItem]:
    """Load a whole trace file into memory (validating every record)."""
    items: List[TraceItem] = []
    with open(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            items.append(parse_line(line, lineno))
    return items


def trace_from_file(
    path: Union[str, Path], loop: bool = True
) -> Iterator[TraceItem]:
    """Replay a trace file, by default looping forever (steady state)."""
    items = read_trace(path)
    if not items:
        raise ValueError(f"{path}: empty trace")
    if not loop:
        yield from items
        return
    while True:
        yield from items

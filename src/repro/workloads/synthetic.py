"""Statistical address-stream generator (the SPEC-trace substitution).

We do not have the paper's SPEC CPU 2000 sampled traces, so each
benchmark is replaced by a stochastic generator whose knobs reproduce
the benchmark's *L2-level signal* — the only property the paper's
evaluation consumes (see DESIGN.md, Substitutions).

The generator interleaves non-memory runs with *memory runs*.  Each
memory run picks an address pool:

* **hot** — a small region that fits in the L1, accessed with temporal
  reuse (L1 hits);
* **warm** — a medium region streamed with a per-thread pointer; misses
  the L1 but fits the thread's L2 share (L2 hits);
* **cold** — a huge region streamed linearly; misses the L2 (DRAM).

Within a run, accesses walk consecutive words, so store runs gather in
the store gathering buffer (spatial locality -> Figure 7's gathering
rate) and load runs model line reuse.  ``dependent_prob`` marks loads
as dependent to throttle memory-level parallelism (mcf-like behaviour).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.cpu.isa import TraceItem, load, nonmem, store
from repro.workloads.microbench import thread_base

WORD = 4
LINE = 64


@dataclass(frozen=True)
class WorkloadProfile:
    """Knobs describing one synthetic benchmark.

    Probabilities ``p_hot + p_warm + p_cold`` must sum to 1; they select
    the pool for each memory run.  ``mem_fraction`` is the fraction of
    instructions that are memory operations, ``store_fraction`` the
    fraction of memory *runs* that are store runs (the per-operation
    store fraction is higher when ``store_run_length > run_length``:
    ``st*srun / (st*srun + (1-st)*run)``).
    """

    name: str
    mem_fraction: float = 0.30
    store_fraction: float = 0.35
    p_hot: float = 0.90
    p_warm: float = 0.07
    p_cold: float = 0.03
    hot_bytes: int = 8 * 1024
    warm_bytes: int = 1024 * 1024
    cold_bytes: int = 256 * 1024 * 1024
    run_length: int = 4            # mean accesses per memory run
    store_run_length: int = 8      # mean stores per store run (gathering)
    dependent_prob: float = 0.0    # fraction of pool-selecting loads that chain

    def validate(self) -> "WorkloadProfile":
        if not 0 < self.mem_fraction < 1:
            raise ValueError(f"{self.name}: mem_fraction out of (0,1)")
        if not 0 <= self.store_fraction <= 1:
            raise ValueError(f"{self.name}: store_fraction out of [0,1]")
        total = self.p_hot + self.p_warm + self.p_cold
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"{self.name}: pool probabilities sum to {total}")
        if min(self.run_length, self.store_run_length) < 1:
            raise ValueError(f"{self.name}: run lengths must be >= 1")
        if not 0 <= self.dependent_prob <= 1:
            raise ValueError(f"{self.name}: dependent_prob out of [0,1]")
        return self


class _Pools:
    """Per-thread pool addressing: hot reuse, warm/cold streaming."""

    def __init__(self, profile: WorkloadProfile, thread_id: int, rng: random.Random):
        base = thread_base(thread_id)
        self.rng = rng
        self.hot_base = base
        self.hot_lines = max(1, profile.hot_bytes // LINE)
        self.warm_base = base + (1 << 28)
        self.warm_lines = max(1, profile.warm_bytes // LINE)
        self.cold_base = base + (2 << 28)
        self.cold_lines = max(1, profile.cold_bytes // LINE)
        self._warm_ptr = 0
        self._cold_ptr = 0

    def start_address(self, pool: str) -> int:
        if pool == "hot":
            return self.hot_base + self.rng.randrange(self.hot_lines) * LINE
        if pool == "warm":
            self._warm_ptr = (self._warm_ptr + 1) % self.warm_lines
            return self.warm_base + self._warm_ptr * LINE
        self._cold_ptr = (self._cold_ptr + 1) % self.cold_lines
        return self.cold_base + self._cold_ptr * LINE


def synthetic_trace(
    profile: WorkloadProfile, thread_id: int = 0, seed: int = 12345
) -> Iterator[TraceItem]:
    """Infinite segment trace realizing ``profile`` for one thread."""
    profile.validate()
    # zlib.crc32, not hash(): str hashing is randomized per process and
    # would make runs irreproducible across invocations.
    name_hash = zlib.crc32(profile.name.encode())
    rng = random.Random((seed * 1_000_003) ^ (thread_id * 7919) ^ name_hash)
    pools = _Pools(profile, thread_id, rng)

    # Mean memory ops per run, counting loads and stores by their mix.
    mean_run = (
        profile.store_fraction * profile.store_run_length
        + (1.0 - profile.store_fraction) * profile.run_length
    )
    # Non-memory instructions per memory op so that memory ops are
    # mem_fraction of all instructions.
    gap_per_op = (1.0 - profile.mem_fraction) / profile.mem_fraction
    mean_gap = max(1.0, gap_per_op * mean_run)

    while True:
        gap = max(1, int(rng.expovariate(1.0 / mean_gap)) if mean_gap > 0 else 1)
        yield nonmem(gap)

        is_store_run = rng.random() < profile.store_fraction
        length_mean = (
            profile.store_run_length if is_store_run else profile.run_length
        )
        length = max(1, min(32, int(rng.expovariate(1.0 / length_mean)) + 1))

        roll = rng.random()
        if roll < profile.p_hot:
            pool = "hot"
        elif roll < profile.p_hot + profile.p_warm:
            pool = "warm"
        else:
            pool = "cold"
        addr = pools.start_address(pool)

        dependent_first = (
            not is_store_run and rng.random() < profile.dependent_prob
        )
        for index in range(length):
            word_addr = addr + index * WORD
            if is_store_run:
                yield store(word_addr)
            else:
                yield load(word_addr, dependent=(dependent_first and index == 0))

"""The paper's two microbenchmarks (Table 2).

Each operates on a two-dimensional array of 32-bit words whose rows are
64 bytes (one L1 line) and whose total size is 32 KB — twice the L1 data
cache — so the access stream misses the L1 continuously but fits easily
in the L2:

* **Loads** — continuously loads the first word of each row (unrolled
  by 4), producing a constant stream of L2 read hits that stresses L2
  load bandwidth;
* **Stores** — identical but with stores; with write-through L1s every
  store reaches the L2, and since consecutive stores touch different
  lines nothing gathers, stressing L2 store bandwidth (each write costs
  two back-to-back data-array accesses).

Threads use disjoint address spaces (per-thread base offset), matching
the paper's private virtual-to-physical mappings.
"""

from __future__ import annotations

from typing import Iterator

from repro.cpu.isa import TraceItem, load, nonmem, store

ARRAY_BYTES = 32 * 1024
ROW_BYTES = 64
ROWS = ARRAY_BYTES // ROW_BYTES
UNROLL = 4

# Generous per-thread address-space spacing keeps pools disjoint.
THREAD_SPACING = 1 << 32


def thread_base(thread_id: int) -> int:
    if thread_id < 0:
        raise ValueError("negative thread id")
    return (thread_id + 1) * THREAD_SPACING


def loads_trace(thread_id: int = 0) -> Iterator[TraceItem]:
    """The Loads microbenchmark: infinite stream of row-stride loads.

    Per unrolled iteration: 4 loads + the address increment (1 non-memory
    instruction); the loop is unrolled so branch resources (the 970's
    BIQ) are not the bottleneck, which we mirror by keeping the
    non-memory overhead minimal.
    """
    base = thread_base(thread_id)
    while True:
        for row in range(0, ROWS, UNROLL):
            for step in range(UNROLL):
                yield load(base + (row + step) * ROW_BYTES)
            yield nonmem(1)


def stores_trace(thread_id: int = 0) -> Iterator[TraceItem]:
    """The Stores microbenchmark: infinite stream of row-stride stores."""
    base = thread_base(thread_id)
    while True:
        for row in range(0, ROWS, UNROLL):
            for step in range(UNROLL):
                yield store(base + (row + step) * ROW_BYTES)
            yield nonmem(1)


MICROBENCHMARKS = {
    "loads": loads_trace,
    "stores": stores_trace,
}

"""Per-benchmark synthetic profiles standing in for SPEC CPU 2000.

One :class:`WorkloadProfile` per benchmark named in the paper's
Figures 6-7, calibrated so the *population* reproduces the paper's
characterization (the input signal of every later experiment):

* a wide spread of data-array utilizations with the figure's ordering
  (art highest ... sixtrack lowest) and a single-thread mean around a
  quarter of a bank's bandwidth (Section 5.2);
* writes ≈ 55 % of L2 requests after gathering, gathering rate ≈ 80 %
  on average (Figure 7);
* equake/swim: very few writes and miss-dominated traffic, pushing tag
  utilization up toward data-array utilization (Figure 6's anomaly);
* mcf/ammp-style dependent loads: low memory-level parallelism, making
  them latency-sensitive (Section 4.1.2's susceptible class).

The absolute parameter values are calibration artifacts, not
measurements of SPEC; see DESIGN.md "Substitutions".
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.cpu.isa import TraceItem
from repro.workloads.phased import PhasedProfile, phased_trace
from repro.workloads.synthetic import WorkloadProfile, synthetic_trace

# Figure 6's benchmark order (descending data-array utilization).
SPEC_ORDER: List[str] = [
    "art", "vpr", "mesa", "crafty", "gap", "mcf", "apsi", "twolf", "gcc",
    "gzip", "lucas", "equake", "swim", "wupwise", "ammp", "bzip2", "mgrid",
    "sixtrack",
]


def _profile(name: str, mem: float, st: float, hot: float, warm: float,
             cold: float, run: int, srun: int, dep: float) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        mem_fraction=mem,
        store_fraction=st,
        p_hot=hot,
        p_warm=warm,
        p_cold=cold,
        run_length=run,
        store_run_length=srun,
        dependent_prob=dep,
    ).validate()


# Parameter values produced by the two-pass calibration described in
# DESIGN.md (fit against the Figure-6 utilization ladder and Figure-7
# write/gathering targets on the baseline 2-bank uniprocessor).
SPEC_PROFILES: Dict[str, WorkloadProfile] = {
    #                      mem   st      hot      warm     cold    run srun dep
    "art":      _profile("art",      0.45, 0.6000, 0.40000, 0.48000, 0.12000, 3, 6, 0.00),
    "vpr":      _profile("vpr",      0.40, 0.6000, 0.40000, 0.51000, 0.09000, 3, 6, 0.10),
    "mesa":     _profile("mesa",     0.38, 0.3785, 0.72827, 0.24456, 0.02717, 3, 8, 0.00),
    "crafty":   _profile("crafty",   0.40, 0.2218, 0.85520, 0.13032, 0.01448, 2, 6, 0.00),
    "gap":      _profile("gap",      0.35, 0.3004, 0.77120, 0.20592, 0.02288, 3, 7, 0.00),
    "mcf":      _profile("mcf",      0.35, 0.5649, 0.40000, 0.24000, 0.36000, 2, 5, 0.50),
    "apsi":     _profile("apsi",     0.33, 0.2966, 0.73709, 0.22347, 0.03944, 4, 8, 0.00),
    "twolf":    _profile("twolf",    0.35, 0.2783, 0.74647, 0.22818, 0.02535, 2, 6, 0.15),
    "gcc":      _profile("gcc",      0.33, 0.1814, 0.85557, 0.12999, 0.01444, 3, 8, 0.00),
    "gzip":     _profile("gzip",     0.30, 0.2174, 0.76670, 0.20997, 0.02333, 4, 8, 0.00),
    "lucas":    _profile("lucas",    0.30, 0.2371, 0.56027, 0.26384, 0.17589, 6, 9, 0.00),
    "equake":   _profile("equake",   0.35, 0.0429, 0.40000, 0.18000, 0.42000, 4, 6, 0.20),
    "swim":     _profile("swim",     0.40, 0.0478, 0.61128, 0.09718, 0.29154, 6, 7, 0.00),
    "wupwise":  _profile("wupwise",  0.30, 0.0784, 0.90477, 0.07618, 0.01905, 4, 8, 0.00),
    "ammp":     _profile("ammp",     0.32, 0.0866, 0.91536, 0.06348, 0.02116, 3, 7, 0.30),
    "bzip2":    _profile("bzip2",    0.30, 0.0474, 0.95854, 0.03731, 0.00415, 4, 8, 0.00),
    "mgrid":    _profile("mgrid",    0.33, 0.0314, 0.93861, 0.04297, 0.01842, 8, 9, 0.00),
    "sixtrack": _profile("sixtrack", 0.28, 0.0200, 0.99006, 0.00895, 0.00099, 4, 8, 0.00),
}


def spec_trace(name: str, thread_id: int = 0, seed: int = 12345) -> Iterator[TraceItem]:
    """Infinite trace for one SPEC stand-in benchmark."""
    if name not in SPEC_PROFILES:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {SPEC_ORDER}"
        )
    return synthetic_trace(SPEC_PROFILES[name], thread_id=thread_id, seed=seed)


# Heterogeneous 4-thread mixes for the headline experiment ("Figure 10").
# Each mix pairs aggressive threads (art/vpr/mesa/swim: high data-array
# demand) with latency-sensitive ones (mcf/ammp/twolf/equake: dependent
# loads, low MLP) — the combination where the paper's negative
# interference shows up: with four threads the cache approaches full
# utilization (Section 5.2) and conventional arbitration inflates the
# latency-sensitive threads' queueing delay.
HETEROGENEOUS_MIXES: Dict[str, List[str]] = {
    "mix1": ["art", "mesa", "mcf", "ammp"],
    "mix2": ["art", "vpr", "twolf", "equake"],
    "mix3": ["art", "mesa", "equake", "twolf"],
    "mix4": ["vpr", "crafty", "mcf", "ammp"],
    "mix5": ["art", "swim", "ammp", "equake"],
    "mix6": ["swim", "mcf", "mesa", "gzip"],
}


# Phase-changing profiles for the QoS control plane (repro.qos): each
# rotates between SPEC stand-ins whose L2-level signals straddle the
# classifier's taxonomy — equake/swim lean streaming (cold, miss-
# dominated traffic), art/mcf lean cache-hungry (warm-pool reuse the L2
# can capture), sixtrack/mgrid/bzip2 lean light (hot working sets that
# barely touch the L2) — so a thread's label must change mid-run.
PHASED_PROFILES: Dict[str, PhasedProfile] = {
    name: PhasedProfile(name, phases, instructions).validate()
    for name, phases, instructions in (
        ("art-sixtrack", ("art", "sixtrack"), 12_000),
        ("sixtrack-art", ("sixtrack", "art"), 12_000),
        ("equake-art", ("equake", "art"), 12_000),
        ("swim-mgrid", ("swim", "mgrid"), 12_000),
        ("mcf-bzip2", ("mcf", "bzip2"), 12_000),
    )
}


# Phase-changing 4-thread mixes for the policy-frontier experiment:
# fig10-style pairings of aggressive and latency-sensitive threads, but
# with some threads migrating between classes mid-run.  Entries name
# either a PHASED_PROFILES schedule or a steady SPEC_PROFILES workload.
PHASED_MIXES: Dict[str, List[str]] = {
    "pmix1": ["art-sixtrack", "mcf", "equake-art", "gzip"],
    "pmix2": ["sixtrack-art", "ammp", "swim-mgrid", "twolf"],
    "pmix3": ["equake-art", "mcf-bzip2", "art", "mgrid"],
}


def phased_profile_trace(
    name: str, thread_id: int = 0, seed: int = 12345
) -> Iterator[TraceItem]:
    """Infinite trace for one named phase-changing profile."""
    if name not in PHASED_PROFILES:
        raise KeyError(
            f"unknown phased profile {name!r}; "
            f"choose from {sorted(PHASED_PROFILES)}"
        )
    return phased_trace(PHASED_PROFILES[name], thread_id=thread_id, seed=seed)

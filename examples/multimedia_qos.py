#!/usr/bin/env python
"""The paper's motivating scenario: a soft-real-time multimedia thread.

Figure 1b of the paper provisions VPM0 with 50 % of the machine for "a
demanding multimedia application" and 10 % for each of three other
threads, leaving 20 % unallocated.  This example reproduces that
allocation on the shared L2: the multimedia stand-in (the bandwidth-
hungry `art` profile) must meet a frame-rate-like IPC floor regardless
of what the other threads do — including when they are actively
malicious (the Stores microbenchmark flooding the cache with writes).

We compare:
  1. the thread alone (best case),
  2. the thread under a conventional FCFS cache with malicious
     co-runners (no protection),
  3. the same co-runners with a VPC programmed 50/10/10/10
     (the Figure-1b allocation).

Run:  python examples/multimedia_qos.py
"""

from repro import CMPSystem, baseline_config, run_simulation, target_ipc
from repro.common.config import VPCAllocation
from repro.workloads import spec_trace, stores_trace

MULTIMEDIA = "art"           # the most bandwidth-demanding profile
ALLOCATION = VPCAllocation(
    bandwidth_shares=[0.50, 0.10, 0.10, 0.10],   # 20% left unallocated
    capacity_shares=[0.50, 0.10, 0.10, 0.10],
)
WARMUP, MEASURE = 40_000, 30_000


def run_shared(arbiter: str) -> float:
    config = baseline_config(n_threads=4, arbiter=arbiter, vpc=ALLOCATION)
    traces = [spec_trace(MULTIMEDIA, 0)] + [stores_trace(t) for t in (1, 2, 3)]
    system = CMPSystem(config, traces)
    return run_simulation(system, warmup=WARMUP, measure=MEASURE).ipcs[0]


def main() -> None:
    config = baseline_config(n_threads=4)
    # QoS floor: the IPC of a real private machine with 50% of the
    # bandwidth and 50% of the ways (what the VPC must deliver).
    floor = target_ipc(config, spec_trace(MULTIMEDIA, 0), phi=0.5, beta=0.5,
                       warmup=WARMUP, measure=MEASURE)
    solo = target_ipc(config, spec_trace(MULTIMEDIA, 0), phi=1.0, beta=1.0,
                      warmup=WARMUP, measure=MEASURE)
    fcfs = run_shared("fcfs")
    vpc = run_shared("vpc")

    print(f"multimedia thread ({MULTIMEDIA}) IPC:")
    print(f"  alone on the machine:          {solo:.3f}")
    print(f"  QoS floor (50% private eq.):   {floor:.3f}")
    print(f"  FCFS + 3 malicious writers:    {fcfs:.3f}"
          f"   ({fcfs / floor:.0%} of floor)  <- misses deadlines")
    print(f"  VPC 50/10/10/10 allocation:    {vpc:.3f}"
          f"   ({vpc / floor:.0%} of floor)  <- floor guaranteed")

    if vpc < floor * 0.95:
        raise SystemExit("QoS floor violated — this should not happen")
    print("\nthe VPC never lets the thread fall below its provisioned floor,")
    print("and work conservation hands it the unallocated 20% when idle.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""VPC-supported prefetching (the paper's named future work).

The paper disables the 970's prefetchers and leaves "VPC supported
prefetching" as future work, while Section 4.3 uses prefetching as its
example of a mechanism that can violate performance monotonicity (more
bandwidth -> more prefetches -> possible pollution losses).  This study
exercises the extension built in this repository:

1. **Solo speedup** — a pointer-chasing (MLP=1) streaming thread gains
   ~2x from next-line prefetching (each miss's successor is in flight
   before the dependent load needs it).
2. **QoS containment** — under VPC arbitration the prefetches are
   charged to the issuing thread's own bandwidth share: turning the
   subject's prefetcher on must NOT slow down its neighbour.
3. **Monotonicity probe** — sweep the subject's share with prefetching
   enabled and audit the IPC curve (Section 4.3's concern).

Run:  python examples/prefetch_study.py
"""

from dataclasses import replace

from repro import CMPSystem, baseline_config, run_simulation
from repro.common.config import CoreConfig, VPCAllocation
from repro.core.qos import monotonicity_violations
from repro.workloads import stores_trace
from repro.workloads.synthetic import WorkloadProfile, synthetic_trace

WARMUP, MEASURE = 20_000, 15_000

CHASER = WorkloadProfile(
    name="chaser", mem_fraction=0.1, store_fraction=0.02,
    p_hot=0.0, p_warm=0.0, p_cold=1.0,
    cold_bytes=64 * 1024 * 1024, run_length=1, store_run_length=4,
    dependent_prob=1.0,
).validate()


def build(n_threads, shares, prefetch, traces):
    config = baseline_config(
        n_threads=n_threads, arbiter="vpc",
        vpc=VPCAllocation(list(shares), [1.0 / n_threads] * n_threads),
    )
    config = replace(
        config, core=CoreConfig(prefetch_enabled=prefetch, prefetch_degree=2)
    ).validate()
    return CMPSystem(config, traces)


def main() -> None:
    # 1. Solo speedup.
    solo = {}
    for prefetch in (False, True):
        system = build(1, [1.0], prefetch, [synthetic_trace(CHASER, 0)])
        result = run_simulation(system, warmup=WARMUP, measure=MEASURE)
        solo[prefetch] = result.ipcs[0]
        if prefetch:
            accuracy = system.cores[0].prefetch_accuracy()
    print("1) solo pointer-chaser:")
    print(f"   no prefetch  IPC {solo[False]:.3f}")
    print(f"   prefetch     IPC {solo[True]:.3f}  "
          f"({solo[True] / solo[False]:.2f}x, accuracy {accuracy:.0%})")

    # 2. QoS containment: the neighbour keeps its *guarantee* (half the
    # bandwidth) no matter what the subject's prefetcher does.  Its raw
    # IPC may drop a little — prefetches make the subject consume more of
    # its own share, so less excess spills over — but it must never fall
    # below its half-machine floor.
    stores_alone = build(1, [1.0], False, [stores_trace(0)])
    full_rate = run_simulation(
        stores_alone, warmup=2 * WARMUP, measure=MEASURE
    ).ipcs[0]
    floor = 0.5 * full_rate   # Stores throughput scales linearly in share
    neighbour = {}
    for prefetch in (False, True):
        system = build(
            2, [0.5, 0.5], prefetch,
            [synthetic_trace(CHASER, 0), stores_trace(1)],
        )
        result = run_simulation(system, warmup=WARMUP, measure=MEASURE)
        neighbour[prefetch] = result.ipcs[1]
    print("\n2) neighbour (Stores at phi=.5) while subject prefetches:")
    print(f"   neighbour's QoS floor:        IPC {floor:.3f}")
    print(f"   subject prefetch off:         IPC {neighbour[False]:.3f}")
    print(f"   subject prefetch on:          IPC {neighbour[True]:.3f}")
    print("   (the gap above the floor is donated excess bandwidth; the")
    print("   subject's prefetches reclaim some of it, never the floor)")
    if neighbour[True] < floor * 0.95:
        raise SystemExit("neighbour pushed below its guaranteed floor")

    # 3. Monotonicity probe (Section 4.3).
    print("\n3) subject IPC vs. bandwidth share, prefetching enabled:")
    curve = []
    for share in (0.25, 0.5, 0.75, 1.0):
        system = build(
            2, [share, 1.0 - share], True,
            [synthetic_trace(CHASER, 0), stores_trace(1)],
        )
        result = run_simulation(system, warmup=WARMUP, measure=MEASURE)
        curve.append((share, result.ipcs[0]))
        print(f"   phi={share:4.2f}  IPC {result.ipcs[0]:.3f}")
    violations = monotonicity_violations(curve, tolerance=0.03)
    if violations:
        print("   monotonicity VIOLATED (Section 4.3's predicted hazard):")
        for res_a, perf_a, res_b, perf_b in violations:
            print(f"     phi {res_a} -> {res_b}: {perf_a:.3f} -> {perf_b:.3f}")
    else:
        print("   curve is monotone — on this workload the pollution losses")
        print("   never outweigh the prefetch gains (the paper's Section-4.3")
        print("   hazard is possible in principle, not inevitable).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Closing the loop: system software finds the right allocation.

The paper deliberately separates mechanism from policy: the VPC
hardware *enforces* whatever shares software programs, and choosing the
shares is an OS problem.  This example plays the OS: a soft-real-time
thread (stand-in video decoder) must sustain a frame-rate IPC, but the
right share is unknown — it depends on the workload and on what the
co-runners do.  A :class:`~repro.policy.FeedbackAllocator` starts from
a deliberately wrong allocation, observes achieved IPC every epoch, and
reprograms the VPC control registers until the deadline IPC is met with
the smallest sufficient share; everything left over flows to the batch
co-runner through the fairness policy.

Run:  python examples/autopilot_allocation.py
"""

from repro import CMPSystem, baseline_config
from repro.common.config import VPCAllocation
from repro.policy import FeedbackAllocator
from repro.workloads import loads_trace, stores_trace

TARGET_IPC = 0.20       # the "frame deadline" for the decoder stand-in
EPOCH = 4_000


def main() -> None:
    # Start badly provisioned: the real-time thread gets only 10%.
    config = baseline_config(
        n_threads=2, arbiter="vpc",
        vpc=VPCAllocation([0.10, 0.90], [0.5, 0.5]),
    )
    system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
    system.run(30_000)

    allocator = FeedbackAllocator(
        system, thread_id=0, target_ipc=TARGET_IPC, epoch_cycles=EPOCH,
    )
    print(f"target IPC {TARGET_IPC:.2f}; starting share "
          f"{allocator.current_share:.2f}\n")
    print(f"{'epoch':>5} {'share':>6} {'IPC':>7}  status")
    for index in range(16):
        decision = allocator.epoch()
        met = decision.observed_ipc >= TARGET_IPC * 0.97
        status = "meets deadline" if met else "UNDER target"
        print(f"{index:>5} {decision.share_before:>6.2f} "
              f"{decision.observed_ipc:>7.3f}  {status}")
        if allocator.converged() and index >= 5:
            break

    final = allocator.decisions[-1]
    print(f"\nconverged at share {final.share_after:.2f} "
          f"(IPC {final.observed_ipc:.3f})")
    if final.observed_ipc < TARGET_IPC * 0.9:
        raise SystemExit("allocator failed to reach the target")
    print("the hardware guaranteed every intermediate allocation while the")
    print("software searched; the co-runner absorbed all released bandwidth.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The fair-queuing library on its own: tags, schedules, and audits.

`repro.fairqueue` is a standalone implementation of the network
fair-queuing machinery the VPC arbiters are derived from (paper
Section 3.2).  This example builds a bursty three-flow trace, schedules
it with weighted fair queuing over a non-preemptible link, prints the
resulting timeline, and machine-checks the three guarantees the paper
relies on: deadlines (virtual finish + max preemption latency),
per-interval minimum bandwidth, and work conservation.

Run:  python examples/fair_queuing_demo.py
"""

import random

from repro.fairqueue import (
    Arrival,
    FairQueueScheduler,
    audit_all,
    service_by_flow,
)

SHARES = [0.5, 0.3, 0.2]


def build_trace(seed: int = 7) -> list:
    rng = random.Random(seed)
    arrivals = []
    clock = 0.0
    # Flow 0: steady stream.  Flow 1: periodic bursts.  Flow 2: sparse
    # long packets (the "write" analogue: double service time).
    for index in range(60):
        arrivals.append(Arrival(index * 1.0, 0, 1.0))
    for burst in range(6):
        start = burst * 10.0
        for _ in range(6):
            arrivals.append(Arrival(start, 1, 1.0))
    while clock < 60.0:
        clock += rng.expovariate(0.2)
        arrivals.append(Arrival(clock, 2, 2.0))
    return arrivals


def main() -> None:
    arrivals = build_trace()
    scheduler = FairQueueScheduler(SHARES)
    records = scheduler.run(arrivals)

    print(f"{len(arrivals)} packets over 3 flows, shares {SHARES}\n")
    print("first 12 grants (flow, start -> finish, virtual finish tag):")
    for record in records[:12]:
        print(f"  flow{record.flow_id}  {record.start:6.2f} -> "
              f"{record.finish:6.2f}   F={record.virtual_finish:7.2f}")

    totals = service_by_flow(records)
    horizon = max(r.finish for r in records)
    print("\nservice received (fraction of link time):")
    for flow_id, share in enumerate(SHARES):
        got = totals.get(flow_id, 0.0) / horizon
        print(f"  flow{flow_id}: {got:.2f}  (allocated {share:.2f})")

    print("\nauditing guarantees:")
    results = audit_all(arrivals, records, SHARES)
    for name, violations in results.items():
        status = "OK" if not violations else f"{len(violations)} VIOLATIONS"
        print(f"  {name:17} {status}")
        for violation in violations[:3]:
            print(f"    flow{violation.flow_id}: {violation.detail}")
    if any(results.values()):
        raise SystemExit("guarantee violated — this should not happen")


if __name__ == "__main__":
    main()

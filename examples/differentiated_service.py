#!/usr/bin/env python
"""Differentiated service: sweeping a thread's bandwidth allocation.

The paper's Section 2.1 distinguishes its contribution from earlier FQ
memory controllers partly by studying *differentiated* service —
allocating different threads different amounts of cache bandwidth.
This example sweeps one thread's share against a fixed aggressive
co-runner, printing the resulting IPC curve, and audits the curve for
performance monotonicity (Section 4.3): more resources must never mean
less performance.

It also demonstrates run-time reconfiguration through the
software-visible VPC control registers: the final sweep point is
reached by *reprogramming* a live system rather than rebuilding it.

Run:  python examples/differentiated_service.py
"""

from repro import CMPSystem, baseline_config, run_simulation
from repro.common.config import VPCAllocation
from repro.core.qos import monotonicity_violations
from repro.workloads import spec_trace, stores_trace

SUBJECT = "mcf"      # low-MLP: the class most sensitive to arbitration
WARMUP, MEASURE = 40_000, 25_000
SHARES = (0.1, 0.25, 0.5, 0.75, 0.9)


def ipc_at_share(share: float) -> float:
    vpc = VPCAllocation([share, 1.0 - share], [0.5, 0.5])
    config = baseline_config(n_threads=2, arbiter="vpc", vpc=vpc)
    system = CMPSystem(config, [spec_trace(SUBJECT, 0), stores_trace(1)])
    return run_simulation(system, warmup=WARMUP, measure=MEASURE).ipcs[0]


def main() -> None:
    print(f"{SUBJECT} vs. the Stores microbenchmark, sweeping {SUBJECT}'s share:\n")
    curve = []
    for share in SHARES:
        ipc = ipc_at_share(share)
        curve.append((share, ipc))
        bar = "#" * int(ipc * 80)
        print(f"  phi={share:4.2f}  IPC {ipc:.3f}  {bar}")

    violations = monotonicity_violations(curve, tolerance=0.03)
    if violations:
        print("\nmonotonicity violations (more bandwidth, less performance):")
        for res_a, perf_a, res_b, perf_b in violations:
            print(f"  phi {res_a} -> {res_b}: IPC {perf_a:.3f} -> {perf_b:.3f}")
    else:
        print("\nperformance is monotone in the allocation (Section 4.3's")
        print("conjecture holds for the VPC mechanisms on this workload).")

    # Run-time reprogramming: take the phi=0.25 system and write new
    # shares through the control registers mid-execution.
    vpc = VPCAllocation([0.25, 0.75], [0.5, 0.5])
    config = baseline_config(n_threads=2, arbiter="vpc", vpc=vpc)
    system = CMPSystem(config, [spec_trace(SUBJECT, 0), stores_trace(1)])
    system.run(WARMUP)
    before = system.cores[0].dispatched
    system.run(MEASURE)
    low = (system.cores[0].dispatched - before) / MEASURE
    # Release bandwidth before granting it: the register file refuses
    # transient over-allocation, so shrink thread 1 first.
    system.registers.write_bandwidth(1, 0.1)
    system.registers.write_bandwidth(0, 0.9)
    before = system.cores[0].dispatched
    system.run(MEASURE)
    high = (system.cores[0].dispatched - before) / MEASURE
    print(f"\nlive reprogramming 25% -> 90%: IPC {low:.3f} -> {high:.3f}")


if __name__ == "__main__":
    main()

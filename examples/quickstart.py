#!/usr/bin/env python
"""Quickstart: simulate a 2-thread CMP sharing an L2 under three arbiters.

Runs the paper's Loads + Stores microbenchmark pair (Table 2) under the
RoW-FCFS and FCFS baselines and under a VPC with a 75/25 split, printing
per-thread IPC and shared-resource utilization.  This is the smallest
end-to-end tour of the library: configuration -> system -> simulation ->
results.

Run:  python examples/quickstart.py
"""

from repro import CMPSystem, baseline_config, run_simulation
from repro.common.config import VPCAllocation
from repro.workloads import loads_trace, stores_trace


def simulate(arbiter: str, vpc: VPCAllocation) -> None:
    config = baseline_config(n_threads=2, arbiter=arbiter, vpc=vpc)
    system = CMPSystem(config, [loads_trace(0), stores_trace(1)])
    result = run_simulation(system, warmup=40_000, measure=30_000)
    print(f"{arbiter:>9}  loads IPC {result.ipcs[0]:.3f}  "
          f"stores IPC {result.ipcs[1]:.3f}  "
          f"data array {result.utilizations['data']:.0%}  "
          f"tag {result.utilizations['tag']:.0%}  "
          f"bus {result.utilizations['bus']:.0%}")


def main() -> None:
    print("Loads (thread 0) vs Stores (thread 1) on the Table-1 CMP:\n")
    equal = VPCAllocation.equal(2)
    simulate("row-fcfs", equal)   # loads starve stores completely
    simulate("fcfs", equal)       # stores grab 2/3 of the data array
    # VPC: explicitly give Loads 75% and Stores 25% of every shared
    # resource, and half the cache ways each.
    simulate("vpc", VPCAllocation([0.75, 0.25], [0.5, 0.5]))
    print("\nrow-fcfs starves the store thread; fcfs lets writes dominate;")
    print("vpc divides bandwidth exactly as programmed (75/25).")


if __name__ == "__main__":
    main()

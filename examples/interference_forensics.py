#!/usr/bin/env python
"""Interference forensics: where do a victim's cycles actually go?

Runs mcf (low-MLP, latency-sensitive) against three Stores threads
under the conventional FCFS cache and under a VPC, with per-request
lifecycle recording enabled, then:

* prints each thread's load-latency and bank-queueing-delay
  distributions (the queueing component is what inter-thread
  interference inflates — Section 4.1.2's preemption-latency story);
* attaches the online :class:`~repro.core.monitor.QoSMonitor` to the
  VPC run and reports that every monitoring window delivered the
  programmed bandwidth guarantee.

Run:  python examples/interference_forensics.py
"""

from repro import CMPSystem, baseline_config
from repro.analysis import format_report, loads_by_thread, queueing_by_thread
from repro.common.config import VPCAllocation
from repro.core.monitor import QoSMonitor, run_monitored
from repro.workloads import spec_trace, stores_trace

WARMUP, MEASURE = 25_000, 20_000


def build(arbiter: str) -> CMPSystem:
    config = baseline_config(
        n_threads=4, arbiter=arbiter, vpc=VPCAllocation.equal(4)
    )
    traces = [spec_trace("mcf", 0)] + [stores_trace(t) for t in (1, 2, 3)]
    return CMPSystem(config, traces, record_requests=True)


def main() -> None:
    for arbiter in ("fcfs", "vpc"):
        system = build(arbiter)
        system.run(WARMUP)
        system.request_log.clear()   # analyze steady state only

        monitor = None
        if arbiter == "vpc":
            monitor = QoSMonitor(system, window=2_000)
            run_monitored(system, MEASURE, monitor)
        else:
            system.run(MEASURE)

        print(f"=== {arbiter.upper()} ===")
        mcf_ipc = (system.cores[0].dispatched /
                   system.cores[0].cycles)
        print(f"mcf cumulative IPC {mcf_ipc:.3f} "
              f"(thread 0; threads 1-3 are Stores)")
        print(format_report(loads_by_thread(system.request_log),
                            "demand-load latency (cycles):"))
        print(format_report(queueing_by_thread(system.request_log),
                            "bank queueing delay (cycles):"))
        if monitor is not None:
            status = "all windows clean" if monitor.clean else (
                f"{len(monitor.violations)} VIOLATIONS"
            )
            print(f"QoS monitor: {monitor.windows_checked} windows, {status}")
            if not monitor.clean:
                raise SystemExit("bandwidth guarantee violated")
        print()

    print("under FCFS the victim's queueing tail (p95) explodes behind the")
    print("store threads' double-length data-array accesses; the VPC arbiter")
    print("bounds it to roughly one preemption per burst.")


if __name__ == "__main__":
    main()
